(* Golden equivalence (interning satellite): replaying every example
   program through the live (interned) detector and through the frozen
   pre-interning reference in [Golden_ref] must produce byte-for-byte
   identical race reports and identical funnel statistics, under both
   the per-location and the packed history implementations. *)

module H = Drd_harness
open Drd_core

let string_of_kind = function Event.Read -> "R" | Event.Write -> "W"

let string_of_thread_info = function
  | Event.Thread n -> Printf.sprintf "T%d" n
  | Event.Bot -> "bot"
  | Event.Top -> "top"

let string_of_locks ls =
  "{" ^ String.concat "," (List.map string_of_int ls) ^ "}"

(* One canonical line per race, shared by both representations. *)
let render ~loc ~cur_thread ~cur_kind ~cur_site ~cur_locks ~p_thread ~p_kind
    ~p_site ~p_locks =
  Printf.sprintf "loc=%d cur=T%d:%s@%d%s prior=%s:%s@%d%s" loc cur_thread
    (string_of_kind cur_kind) cur_site (string_of_locks cur_locks)
    (string_of_thread_info p_thread) (string_of_kind p_kind) p_site
    (string_of_locks p_locks)

let render_new (r : Report.race) =
  render ~loc:r.Report.loc ~cur_thread:r.Report.current.Event.thread
    ~cur_kind:r.Report.current.Event.kind
    ~cur_site:r.Report.current.Event.site
    ~cur_locks:(Lockset_id.to_sorted_list r.Report.current.Event.locks)
    ~p_thread:r.Report.prior.Trie.p_thread
    ~p_kind:r.Report.prior.Trie.p_kind ~p_site:r.Report.prior.Trie.p_site
    ~p_locks:(Lockset_id.to_sorted_list r.Report.prior.Trie.p_locks)

let render_golden (r : Golden_ref.race) =
  render ~loc:r.Golden_ref.r_loc
    ~cur_thread:r.Golden_ref.r_current.Golden_ref.thread
    ~cur_kind:r.Golden_ref.r_current.Golden_ref.kind
    ~cur_site:r.Golden_ref.r_current.Golden_ref.site
    ~cur_locks:(Lockset.to_sorted_list r.Golden_ref.r_current.Golden_ref.locks)
    ~p_thread:r.Golden_ref.r_prior.Golden_ref.p_thread
    ~p_kind:r.Golden_ref.r_prior.Golden_ref.p_kind
    ~p_site:r.Golden_ref.r_prior.Golden_ref.p_site
    ~p_locks:(Lockset.to_sorted_list r.Golden_ref.r_prior.Golden_ref.p_locks)

let impl_name = function
  | Detector.Per_location -> "per-location"
  | Detector.Packed -> "packed"

let check_program name source =
  let compiled = H.Pipeline.compile H.Config.full ~source in
  let log, _ = H.Pipeline.record_log compiled in
  List.iter
    (fun history ->
      let tag = Printf.sprintf "%s/%s" name (impl_name history) in
      let config = { Detector.default_config with Detector.history } in
      (* Live detector. *)
      let coll = Report.collector () in
      let det = Detector.create ~config coll in
      Event_log.replay log det;
      let live_stats = Detector.stats det in
      let live_reports =
        String.concat "\n" (List.map render_new (Report.races coll))
      in
      (* Frozen reference. *)
      let g = Golden_ref.create config in
      Golden_ref.replay log g;
      let gold_stats = Golden_ref.stats g in
      let gold_reports =
        String.concat "\n" (List.map render_golden (Golden_ref.races g))
      in
      Alcotest.(check string) (tag ^ ": reports") gold_reports live_reports;
      Alcotest.(check int) (tag ^ ": events_in")
        gold_stats.Golden_ref.events_in live_stats.Detector.events_in;
      Alcotest.(check int) (tag ^ ": cache_hits")
        gold_stats.Golden_ref.cache_hits live_stats.Detector.cache_hits;
      Alcotest.(check int) (tag ^ ": ownership_filtered")
        gold_stats.Golden_ref.ownership_filtered
        live_stats.Detector.ownership_filtered;
      Alcotest.(check int) (tag ^ ": weaker_filtered")
        gold_stats.Golden_ref.weaker_filtered
        live_stats.Detector.weaker_filtered;
      Alcotest.(check int) (tag ^ ": race_checks")
        gold_stats.Golden_ref.race_checks live_stats.Detector.race_checks;
      Alcotest.(check int) (tag ^ ": races_reported")
        gold_stats.Golden_ref.races_reported
        live_stats.Detector.races_reported;
      Alcotest.(check int) (tag ^ ": locations_tracked")
        gold_stats.Golden_ref.locations_tracked
        live_stats.Detector.locations_tracked;
      Alcotest.(check int) (tag ^ ": trie_nodes")
        gold_stats.Golden_ref.trie_nodes live_stats.Detector.trie_nodes)
    [ Detector.Per_location; Detector.Packed ]

let test_benchmarks () =
  List.iter
    (fun (b : H.Programs.benchmark) ->
      check_program b.H.Programs.b_name b.H.Programs.b_source)
    H.Programs.benchmarks

let test_figure2 () =
  check_program "figure2" (H.Programs.figure2 ());
  check_program "figure2-same-pq" (H.Programs.figure2 ~same_pq:true ())

let suite =
  [
    Alcotest.test_case "benchmarks: interned = set-based" `Quick test_benchmarks;
    Alcotest.test_case "figure 2: interned = set-based" `Quick test_figure2;
  ]
