(* The campaign wire format (lib/explore/wire.ml): specs, run
   observations and failure rows must survive encode/decode exactly —
   including hostile strings — whole observation files must round-trip
   through channels, and lines from a future schema version must be
   rejected rather than guessed at. *)

module H = Drd_harness
module E = Drd_explore
module Wire = E.Wire
module Aggregate = E.Aggregate
module Campaign = E.Campaign
module Strategy = E.Strategy
module Interp = Drd_vm.Interp

let contains_sub sub s = Astring_contains.contains s sub

(* ---- generators ---- *)

(* Strings with every class of character the encoder must escape. *)
let gen_string =
  QCheck.Gen.(
    oneof
      [
        small_string ~gen:printable;
        oneofl
          [
            "";
            "plain";
            "with \"quotes\" and \\backslash\\";
            "newline\nand\ttab\rand\x0cfeed";
            "control\x01\x1f chars";
            "unicode \xc3\xa9 \xe2\x82\xac";
            "TourElement#12.next";
            "--seed 7 --quantum 20";
          ];
      ])

let gen_float =
  QCheck.Gen.(
    oneof
      [
        return 0.;
        return 1.0;
        return 123456789.0;
        return 1.5e-9;
        return 123.456789012345678;
        map (fun f -> Float.abs f) float;
      ])
  |> QCheck.Gen.map (fun f -> if Float.is_nan f || f = Float.infinity then 0. else f)

let gen_policy =
  QCheck.Gen.(
    oneof
      [
        return Interp.Random_walk;
        map2
          (fun depth horizon -> Interp.Pct { depth; horizon })
          (int_range 1 8) (int_range 100 50_000);
      ])

let gen_config =
  QCheck.Gen.(
    map
      (fun (base, seed, quantum, policy) ->
        { base with H.Config.seed; quantum; policy })
      (quad (oneofl H.Config.all) (int_range 0 10_000) (int_range 1 500)
         gen_policy))

let gen_strategy =
  QCheck.Gen.(
    oneof
      [
        return Strategy.Sweep;
        return Strategy.Jitter;
        map (fun d -> Strategy.Pct d) (int_range 1 8);
        map
          (fun seeds -> Strategy.Seeds (Array.of_list seeds))
          (list_size (int_bound 6) (int_range 0 1000));
      ])

let gen_budget =
  QCheck.Gen.(
    map
      (fun (runs, seconds, plateau) ->
        Campaign.
          {
            b_runs = runs;
            b_seconds = seconds;
            b_plateau = plateau;
          })
      (triple (int_range 1 1000)
         (opt (map (fun f -> f +. 0.25) (float_bound_exclusive 100.)))
         (opt (int_range 1 50))))

let gen_spec =
  QCheck.Gen.(
    map
      (fun ((config, strategy, workers, bdg, horizon), equiv) ->
        {
          Campaign.e_config = config;
          e_strategy = strategy;
          e_workers = workers;
          e_budget = bdg;
          e_pct_horizon = horizon;
          e_equiv = equiv;
        })
      (pair
         (tup5 gen_config gen_strategy (int_range 1 16) gen_budget
            (int_range 100 100_000))
         (oneofl [ Campaign.Raw; Campaign.Hb ])))

let gen_sighting =
  QCheck.Gen.(
    map
      (fun (obj, site_a, site_b, kinds) ->
        { Aggregate.s_key = Aggregate.key ~obj ~site_a ~site_b; s_kinds = kinds })
      (quad gen_string gen_string gen_string
         (oneofl [ ""; "read vs write"; "write vs write" ])))

let gen_obs =
  QCheck.Gen.(
    map
      (fun (((index, seed, spec, repro, sightings), (objects, fp, events, steps, wall)), hb) ->
        Aggregate.
          {
            o_index = index;
            o_seed = seed;
            o_spec = spec;
            o_repro = repro;
            o_sightings = sightings;
            o_objects = objects;
            o_fingerprint = fp;
            o_hb_fingerprint = hb;
            o_events = events;
            o_steps = steps;
            o_wall = wall;
          })
      (pair
         (pair
            (tup5 (int_range 0 100_000) int gen_string gen_string
               (list_size (int_bound 4) gen_sighting))
            (tup5
               (list_size (int_bound 4) gen_string)
               int (int_range 0 1_000_000) (int_range 0 10_000_000) gen_float))
         (opt (int_range 0 0x3FFFFFFFFFFF))))

let gen_failure =
  QCheck.Gen.(
    map
      (fun (index, seed, error) ->
        Aggregate.{ f_index = index; f_seed = seed; f_error = error })
      (triple (int_range (-1) 100_000) int gen_string))

let arb gen = QCheck.make gen

(* ---- round-trip properties ---- *)

let prop_spec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"spec round-trips"
    (QCheck.pair (arb gen_spec) (QCheck.make gen_string))
    (fun (spec, target) ->
      let line = Wire.spec_to_json ~target spec in
      (match Wire.spec_of_json line with
      | Ok spec' ->
          if not (Campaign.equal_spec spec spec') then
            QCheck.Test.fail_report "decoded spec differs"
      | Error m -> QCheck.Test.fail_report ("spec decode failed: " ^ m));
      (match Wire.target_of_json line with
      | Ok t when t = target -> ()
      | Ok t -> QCheck.Test.fail_report ("target mangled: " ^ t)
      | Error m -> QCheck.Test.fail_report ("target decode failed: " ^ m));
      true)

let prop_obs_roundtrip =
  QCheck.Test.make ~count:300 ~name:"run_obs round-trips" (arb gen_obs)
    (fun obs ->
      match Wire.obs_of_json (Wire.obs_to_json obs) with
      | Ok obs' -> obs = obs'
      | Error m -> QCheck.Test.fail_report ("obs decode failed: " ^ m))

let prop_failure_roundtrip =
  QCheck.Test.make ~count:300 ~name:"failure round-trips" (arb gen_failure)
    (fun f ->
      match Wire.failure_of_json (Wire.failure_to_json f) with
      | Ok f' -> f = f'
      | Error m -> QCheck.Test.fail_report ("failure decode failed: " ^ m))

let prop_row_roundtrip =
  QCheck.Test.make ~count:300 ~name:"row round-trips (tag dispatch)"
    (QCheck.make
       QCheck.Gen.(
         oneof
           [
             map (fun o -> Aggregate.Run o) gen_obs;
             map (fun f -> Aggregate.Failed f) gen_failure;
           ]))
    (fun row ->
      match Wire.row_of_json (Wire.row_to_json row) with
      | Ok row' -> row = row'
      | Error m -> QCheck.Test.fail_report ("row decode failed: " ^ m))

let prop_json_value_roundtrip =
  (* The JSON layer itself: print-then-parse is the identity on values
     the codecs produce (no NaN/infinity, ints distinct from floats). *)
  let gen_json =
    QCheck.Gen.(
      sized (fun n ->
          fix
            (fun self n ->
              let leaf =
                oneof
                  [
                    return Wire.Null;
                    map (fun b -> Wire.Bool b) bool;
                    map (fun i -> Wire.Int i) int;
                    map (fun f -> Wire.Float f) gen_float;
                    map (fun s -> Wire.String s) gen_string;
                  ]
              in
              if n <= 0 then leaf
              else
                oneof
                  [
                    leaf;
                    map
                      (fun l -> Wire.List l)
                      (list_size (int_bound 4) (self (n / 2)));
                    map
                      (fun fields -> Wire.Obj fields)
                      (list_size (int_bound 4)
                         (pair gen_string (self (n / 2))));
                  ])
            (min n 6)))
  in
  QCheck.Test.make ~count:500 ~name:"json print/parse identity"
    (QCheck.make gen_json) (fun v ->
      match Wire.json_of_string (Wire.json_to_string v) with
      | Ok v' -> v = v'
      | Error m -> QCheck.Test.fail_report ("parse failed: " ^ m))

(* ---- schema-version and malformed-input rejection ---- *)

let test_future_version_rejected () =
  let check_rejected what = function
    | Error m ->
        Alcotest.(check bool)
          (what ^ " error mentions the schema version")
          true
          (contains_sub "version" m)
    | Ok _ -> Alcotest.failf "%s from the future was accepted" what
  in
  check_rejected "spec"
    (Wire.spec_of_json {|{"v":3,"t":"spec","target":"","spec":{}}|});
  check_rejected "obs" (Wire.obs_of_json {|{"v":99,"t":"run","obs":{}}|});
  check_rejected "row" (Wire.row_of_json {|{"v":3,"t":"run","obs":{}}|});
  (* A current-version line is still fine through the same path. *)
  let f = { Aggregate.f_index = 3; f_seed = 4; f_error = "boom" } in
  Alcotest.(check bool) "current version accepted" true
    (Wire.failure_of_json (Wire.failure_to_json f) = Ok f)

(* ---- cross-version compatibility (schema 1 <-> 2) ---- *)

(* A v1 run row as the previous release wrote it: no "hb_fingerprint"
   field.  It must decode through the current (v2) decoder with
   [o_hb_fingerprint = None] and re-encode losslessly. *)
let test_v1_obs_row_decodes () =
  let v1_row =
    {|{"v":1,"t":"run","obs":{"index":3,"seed":91,"spec":"seed 91, quantum 17","repro":"--seed 91 --quantum 17","sightings":[{"object":"Account.amt","site_a":"a","site_b":"b","kinds":"write vs read"}],"objects":["Account.amt"],"fingerprint":123456789,"events":42,"steps":400,"wall":0.5}}|}
  in
  match Wire.obs_of_json v1_row with
  | Error m -> Alcotest.failf "v1 obs row rejected: %s" m
  | Ok o ->
      Alcotest.(check int) "index" 3 o.Aggregate.o_index;
      Alcotest.(check int) "fingerprint" 123456789 o.Aggregate.o_fingerprint;
      Alcotest.(check bool) "hb fingerprint absent means None" true
        (o.Aggregate.o_hb_fingerprint = None);
      Alcotest.(check int) "events" 42 o.Aggregate.o_events;
      (* Re-encoding a None-hb row omits the field, so the v1 payload
         survives the round-trip byte-unchanged (modulo the envelope
         version). *)
      Alcotest.(check bool) "round-trips through v2 encoder" true
        (Wire.obs_of_json (Wire.obs_to_json o) = Ok o)

(* A v1 spec header (predating the "equiv" field) must decode as a
   raw-equivalence campaign. *)
let test_v1_spec_decodes_as_raw () =
  let spec =
    { (Campaign.default_spec H.Config.full) with Campaign.e_equiv = Campaign.Raw }
  in
  let v2_line = Wire.spec_to_json ~target:"-b needle" spec in
  (* Rewrite the current header into its v1 form: drop the equiv field
     and stamp the old version.  This is exactly what a v1 writer
     emitted for this spec. *)
  let v1_line =
    Astring_contains.replace ~sub:{|,"equiv":"raw"|} ~by:"" v2_line
    |> Astring_contains.replace ~sub:{|{"v":2|} ~by:{|{"v":1|}
  in
  Alcotest.(check bool) "rewrite removed the equiv field" false
    (contains_sub "equiv" v1_line);
  match Wire.spec_of_json v1_line with
  | Error m -> Alcotest.failf "v1 spec header rejected: %s" m
  | Ok spec' ->
      Alcotest.(check bool) "decodes equal to the raw-equivalence spec" true
        (Campaign.equal_spec spec spec')

(* The previous release's envelope check, frozen: it accepted only
   v = 1.  New rows must bounce off it with the future-version error —
   that error message (and the re-record advice) is the forward-compat
   contract for old readers in the field. *)
let frozen_v1_decode_line s =
  match Wire.json_of_string s with
  | Error m -> Error ("bad wire line: " ^ m)
  | Ok j -> (
      match Wire.member "v" j with
      | Some (Wire.Int 1) -> Ok j
      | Some (Wire.Int v) ->
          Error
            (Printf.sprintf
               "wire schema version %d not supported (this build reads \
                version 1); re-record the shard or upgrade"
               v)
      | _ -> Error "wire line has no schema version")

let test_v2_rows_rejected_by_frozen_v1_decoder () =
  let spec = Campaign.default_spec H.Config.full in
  let obs =
    {
      Aggregate.o_index = 0;
      o_seed = 1;
      o_spec = "s";
      o_repro = "-r";
      o_sightings = [];
      o_objects = [];
      o_fingerprint = 7;
      o_hb_fingerprint = Some 9;
      o_events = 1;
      o_steps = 10;
      o_wall = 0.1;
    }
  in
  List.iter
    (fun (what, line) ->
      match frozen_v1_decode_line line with
      | Ok _ -> Alcotest.failf "frozen v1 decoder accepted a v2 %s" what
      | Error m ->
          Alcotest.(check bool)
            (what ^ " rejection names the version") true
            (contains_sub "version 2" m))
    [
      ("spec header", Wire.spec_to_json ~target:"" spec);
      ("run row", Wire.obs_to_json obs);
      ( "failure row",
        Wire.failure_to_json
          { Aggregate.f_index = 0; f_seed = 1; f_error = "x" } );
    ]

let test_malformed_rejected () =
  let bad s =
    match Wire.row_of_json s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed line %S" s
  in
  bad "";
  bad "not json";
  bad "{\"v\":1}";
  bad {|{"v":1,"t":"spec","target":"x","spec":{}}|};
  (* wrong tag for row *)
  bad {|{"v":1,"t":"run"}|};
  (* missing body *)
  bad {|{"v":1,"t":"run","obs":{"index":1}} trailing|};
  match Wire.json_of_string "{\"a\":1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unterminated object"

let test_unicode_escapes () =
  Alcotest.(check bool) "BMP escape decodes to UTF-8" true
    (Wire.json_of_string "\"\\u20AC\"" = Ok (Wire.String "\xe2\x82\xac"));
  (* A surrogate pair is ONE supplementary code point (4-byte UTF-8),
     not two 3-byte CESU-8 sequences. *)
  Alcotest.(check bool) "surrogate pair combines (U+1F600)" true
    (Wire.json_of_string "\"\\uD83D\\uDE00\""
    = Ok (Wire.String "\xf0\x9f\x98\x80"));
  let rejected what s =
    match Wire.json_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s: %s" what s
  in
  rejected "lone high surrogate" "\"\\uD83D\"";
  rejected "high surrogate then plain text" "\"\\uD83D rest\"";
  rejected "lone low surrogate" "\"\\uDE00\"";
  rejected "high surrogate then non-surrogate escape" "\"\\uD83D\\u0041\""

let test_nonfinite_floats_rejected_at_encode () =
  (* "%g" would print "nan"/"inf" — invalid JSON that fails to re-parse
     and poisons a shard file; the encoder must refuse instead. *)
  let raises what v =
    match Wire.json_to_string v with
    | exception Invalid_argument _ -> ()
    | s -> Alcotest.failf "encoded %s as %s" what s
  in
  raises "nan" (Wire.Float Float.nan);
  raises "inf" (Wire.Float Float.infinity);
  raises "-inf" (Wire.Float Float.neg_infinity);
  raises "nested nan" (Wire.Obj [ ("wall", Wire.Float Float.nan) ])

let test_int_float_distinction () =
  Alcotest.(check bool) "int parses as Int" true
    (Wire.json_of_string "42" = Ok (Wire.Int 42));
  Alcotest.(check bool) "1.0 parses as Float" true
    (Wire.json_of_string "1.0" = Ok (Wire.Float 1.0));
  Alcotest.(check bool) "1e3 parses as Float" true
    (Wire.json_of_string "1e3" = Ok (Wire.Float 1000.0));
  Alcotest.(check string) "integral float keeps .0" "1.0"
    (Wire.json_to_string (Wire.Float 1.0))

(* ---- whole files through channels ---- *)

let test_channel_roundtrip () =
  let spec = Campaign.default_spec H.Config.full in
  let rows =
    [
      Aggregate.Run
        {
          Aggregate.o_index = 0;
          o_seed = 42;
          o_spec = "seed 42, quantum 20";
          o_repro = "--seed 42";
          o_sightings =
            [
              {
                Aggregate.s_key =
                  Aggregate.key ~obj:"G.data[]" ~site_a:"a" ~site_b:"b";
                s_kinds = "write vs read";
              };
            ];
          o_objects = [ "G.data[]" ];
          o_fingerprint = 123456;
          o_hb_fingerprint = Some 654321;
          o_events = 10;
          o_steps = 100;
          o_wall = 0.25;
        };
      Aggregate.Failed { Aggregate.f_index = 1; f_seed = 7; f_error = "kaboom" };
    ]
  in
  let path = Filename.temp_file "drd_wire" ".obs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Wire.write_obs_channel oc ~target:"-b needle" spec rows;
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Wire.read_obs_channel ic with
          | Error m -> Alcotest.failf "read back failed: %s" m
          | Ok (spec', target', rows') ->
              Alcotest.(check bool) "spec" true
                (Campaign.equal_spec spec spec');
              Alcotest.(check string) "target" "-b needle" target';
              Alcotest.(check bool) "rows" true (rows = rows')))

let test_channel_errors_carry_line_numbers () =
  let spec = Campaign.default_spec H.Config.full in
  let path = Filename.temp_file "drd_wire" ".obs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Wire.spec_to_json ~target:"x" spec);
      output_string oc "\n{\"v\":1,\"t\":\"run\"}\n";
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Wire.read_obs_channel ic with
          | Ok _ -> Alcotest.fail "accepted a broken row"
          | Error m ->
              Alcotest.(check bool) "error names line 2" true
                (contains_sub "line 2" m)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_spec_roundtrip;
      prop_obs_roundtrip;
      prop_failure_roundtrip;
      prop_row_roundtrip;
      prop_json_value_roundtrip;
    ]
  @ [
      Alcotest.test_case "future schema version rejected" `Quick
        test_future_version_rejected;
      Alcotest.test_case "v1 obs rows decode (no hb field)" `Quick
        test_v1_obs_row_decodes;
      Alcotest.test_case "v1 spec headers decode as raw equivalence" `Quick
        test_v1_spec_decodes_as_raw;
      Alcotest.test_case "v2 rows bounce off a frozen v1 decoder" `Quick
        test_v2_rows_rejected_by_frozen_v1_decoder;
      Alcotest.test_case "malformed lines rejected" `Quick
        test_malformed_rejected;
      Alcotest.test_case "int/float distinction" `Quick
        test_int_float_distinction;
      Alcotest.test_case "unicode escapes (surrogate pairs)" `Quick
        test_unicode_escapes;
      Alcotest.test_case "non-finite floats rejected at encode" `Quick
        test_nonfinite_floats_rejected_at_encode;
      Alcotest.test_case "observation files round-trip" `Quick
        test_channel_roundtrip;
      Alcotest.test_case "read errors carry line numbers" `Quick
        test_channel_errors_carry_line_numbers;
    ]
