(* Tests for the benchmark ports (paper Table 1) and the Table 3
   accuracy claims: which races each configuration reports, per
   benchmark, and the functional correctness of the programs
   themselves. *)

module H = Drd_harness
module Config = H.Config
module Pipeline = H.Pipeline
module Programs = H.Programs
module Explore = Drd_explore.Explore

let run_config config source = snd (Pipeline.run_source config source)

let benchmark name =
  match Programs.find name with
  | Some b -> b
  | None -> Alcotest.failf "unknown benchmark %s" name

let objects config name =
  let b = benchmark name in
  (run_config config b.Programs.b_source).Pipeline.racy_objects

let int_print prints tag =
  match List.assoc_opt tag prints with
  | Some (Some (Drd_vm.Value.Vint n)) -> n
  | _ -> Alcotest.failf "missing print %s" tag

let test_thread_counts () =
  (* Table 1's dynamic thread counts: 3, 3, 3, 5, 8. *)
  List.iter
    (fun (name, expected) ->
      let b = benchmark name in
      let r = run_config Config.base b.Programs.b_source in
      Alcotest.(check int) (name ^ " threads") expected r.Pipeline.threads)
    [ ("mtrt", 3); ("tsp", 3); ("sor2", 3); ("elevator", 5); ("hedc", 8) ]

let test_results_independent_of_detection () =
  (* The deterministic outputs must not change when instrumentation and
     detection are enabled (same seed ⇒ same schedule structure for
     synchronized state). *)
  List.iter
    (fun name ->
      let b = benchmark name in
      let base = run_config Config.base b.Programs.b_source in
      let full = run_config Config.full b.Programs.b_source in
      match name with
      | "mtrt" ->
          Alcotest.(check int) "rays" (int_print base.Pipeline.prints "rays")
            (int_print full.Pipeline.prints "rays");
          Alcotest.(check int) "checksum"
            (int_print base.Pipeline.prints "checksum")
            (int_print full.Pipeline.prints "checksum")
      | "tsp" ->
          Alcotest.(check int) "min" (int_print base.Pipeline.prints "min")
            (int_print full.Pipeline.prints "min")
      | "sor2" ->
          Alcotest.(check int) "checksum"
            (int_print base.Pipeline.prints "checksum")
            (int_print full.Pipeline.prints "checksum")
      | "elevator" ->
          Alcotest.(check int) "served" (int_print base.Pipeline.prints "served")
            (int_print full.Pipeline.prints "served")
      | "hedc" ->
          Alcotest.(check int) "done" (int_print base.Pipeline.prints "done")
            (int_print full.Pipeline.prints "done")
      | _ -> ())
    [ "mtrt"; "tsp"; "sor2"; "elevator"; "hedc" ]

let contains_sub sub s = Astring_contains.contains s sub

let test_mtrt_races () =
  (* Exactly the two static-field bugs of the paper. *)
  let objs = objects Config.full "mtrt" in
  Alcotest.(check int) "two racy objects" 2 (List.length objs);
  Alcotest.(check bool) "threadCount" true
    (List.exists (contains_sub "threadCount") objs);
  Alcotest.(check bool) "startOfLine" true
    (List.exists (contains_sub "startOfLine") objs);
  (* Statics of different classes stay distinguished under
     FieldsMerged. *)
  Alcotest.(check int) "FieldsMerged still 2" 2
    (List.length (objects Config.fields_merged "mtrt"));
  (* The join + common-lock statistics idiom must stay quiet. *)
  Alcotest.(check bool) "stats quiet" true
    (not (List.exists (contains_sub "raysTraced") objs))

let test_mtrt_eraser_flags_join_idiom () =
  let objs = objects Config.eraser "mtrt" in
  Alcotest.(check bool)
    (Fmt.str "Eraser flags the post-join statistics (%s)"
       (String.concat ", " objs))
    true
    (List.exists (contains_sub "Stats") objs)

let test_tsp_races () =
  let objs = objects Config.full "tsp" in
  Alcotest.(check bool) "MinTourLen found" true
    (List.exists (contains_sub "MinTourLen") objs);
  Alcotest.(check bool) "spurious TourElement reports present" true
    (List.exists (contains_sub "TourElement") objs)

let test_sor2_races_are_barrier_protocol () =
  let objs = objects Config.full "sor2" in
  (* Only boundary row arrays; no fields, no barrier state. *)
  Alcotest.(check bool) "some boundary rows" true (List.length objs >= 1);
  List.iter
    (fun o ->
      Alcotest.(check bool) (o ^ " is an array") true (contains_sub "array" o))
    objs;
  Alcotest.(check bool) "barrier object quiet" true
    (not (List.exists (contains_sub "Barrier") objs))

let test_elevator_race_free () =
  Alcotest.(check (list string)) "elevator Full" []
    (objects Config.full "elevator");
  Alcotest.(check (list string)) "elevator FieldsMerged" []
    (objects Config.fields_merged "elevator")

let test_hedc_races () =
  let objs = objects Config.full "hedc" in
  Alcotest.(check bool) "pool size race" true
    (List.exists (contains_sub "Pool") objs);
  Alcotest.(check bool) "Task.thread_ race" true
    (List.exists (contains_sub "Task") objs);
  (* The LinkedQueue nodes and MetaSearchRequests are per-field quiet. *)
  Alcotest.(check bool) "nodes quiet per-field" true
    (not (List.exists (contains_sub "Node") objs));
  Alcotest.(check bool) "requests quiet per-field" true
    (not (List.exists (contains_sub "MetaSearchRequest") objs))

let test_hedc_fields_merged_superset () =
  let full = objects Config.full "hedc" in
  let merged = objects Config.fields_merged "hedc" in
  Alcotest.(check bool)
    (Fmt.str "FieldsMerged (%d) > Full (%d)" (List.length merged)
       (List.length full))
    true
    (List.length merged > List.length full);
  Alcotest.(check bool) "merged flags the queue nodes" true
    (List.exists (contains_sub "Node") merged)

let test_no_ownership_explodes () =
  (* Table 3, third column: dropping the ownership model floods the
     reports with initialize-then-hand-off false positives. *)
  List.iter
    (fun name ->
      let full = List.length (objects Config.full name) in
      let noown = List.length (objects Config.no_ownership name) in
      Alcotest.(check bool)
        (Fmt.str "%s: NoOwnership (%d) > Full (%d)" name noown full)
        true (noown > full))
    [ "mtrt"; "tsp"; "sor2"; "elevator"; "hedc" ]

let test_table2_configs_agree_on_races () =
  (* Performance configurations must not change what is reported
     (paper Section 7.2's experimental verification), up to the
     schedule perturbation instrumentation causes; we check the stable
     benchmarks. *)
  List.iter
    (fun name ->
      let full = objects Config.full name in
      List.iter
        (fun config ->
          let objs = objects config name in
          Alcotest.(check (list string))
            (Fmt.str "%s: %s = Full" name config.Config.name)
            full objs)
        [ Config.no_dominators; Config.no_peeling; Config.no_cache ])
    [ "mtrt"; "sor2"; "elevator" ]

let test_deterministic_runs () =
  List.iter
    (fun name ->
      let a = objects Config.full name in
      let b = objects Config.full name in
      Alcotest.(check (list string)) (name ^ " deterministic") a b)
    [ "mtrt"; "tsp"; "sor2"; "elevator"; "hedc" ]

let test_seed_sweep_stability () =
  (* The engineered races must be found across schedules. *)
  List.iter
    (fun seed ->
      let config = { Config.full with Config.seed } in
      let mtrt = objects config "mtrt" in
      Alcotest.(check int) (Fmt.str "mtrt seed %d" seed) 2 (List.length mtrt);
      let elevator = objects config "elevator" in
      Alcotest.(check (list string))
        (Fmt.str "elevator seed %d" seed)
        [] elevator;
      let tsp = objects config "tsp" in
      Alcotest.(check bool)
        (Fmt.str "tsp seed %d finds MinTourLen" seed)
        true
        (List.exists (contains_sub "MinTourLen") tsp))
    [ 1; 7; 99 ]

let test_sweep_aggregation () =
  (* The schedule sweep: the deterministic mtrt races appear in every
     run; elevator reports nothing in any run. *)
  let b = benchmark "mtrt" in
  let sw =
    Explore.sweep Config.full ~source:b.Programs.b_source ~seeds:[ 1; 2; 3 ]
  in
  Alcotest.(check (list (pair int string))) "no failures" []
    sw.Explore.sw_failures;
  Alcotest.(check int) "two objects, every seed" 2
    (List.length (List.filter (fun (_, n) -> n = 3) sw.Explore.sw_objects));
  let e = benchmark "elevator" in
  let sw =
    Explore.sweep Config.full ~source:e.Programs.b_source ~seeds:[ 1; 2; 3 ]
  in
  Alcotest.(check (list (pair string int))) "elevator silent" []
    sw.Explore.sw_objects

let test_sor_hoisting_claim () =
  (* Section 8.1: sor2 was derived from sor by hoisting subscripts, and
     the hoisting is what makes the dominator/peeling machinery work. *)
  let events config source =
    (snd (Pipeline.run_source config source)).Pipeline.events
  in
  let sor_full = events Config.full (Programs.sor ()) in
  let sor_nodom = events Config.no_dominators (Programs.sor ()) in
  let sor2_full = events Config.full (Programs.sor2 ()) in
  let sor2_nodom = events Config.no_dominators (Programs.sor2 ()) in
  Alcotest.(check bool)
    (Fmt.str "sor gains nothing (%d vs %d)" sor_full sor_nodom)
    true
    (sor_full * 10 > sor_nodom * 9);
  Alcotest.(check bool)
    (Fmt.str "sor2 collapses (%d vs %d)" sor2_full sor2_nodom)
    true
    (sor2_full * 10 < sor2_nodom);
  (* Both compute the same checksum. *)
  let chk source =
    int_print (snd (Pipeline.run_source Config.base source)).Pipeline.prints
      "checksum"
  in
  Alcotest.(check int) "same numerics" (chk (Programs.sor ()))
    (chk (Programs.sor2 ()))

let test_loc_counts () =
  (* Table 1 sanity: every port is a real program, tens to hundreds of
     lines. *)
  List.iter
    (fun (b : Programs.benchmark) ->
      let loc = Programs.loc_of_source b.Programs.b_source in
      Alcotest.(check bool)
        (Fmt.str "%s loc %d" b.Programs.b_name loc)
        true (loc > 40))
    Programs.benchmarks

let suite =
  [
    Alcotest.test_case "thread counts (Table 1)" `Quick test_thread_counts;
    Alcotest.test_case "outputs independent of detection" `Quick
      test_results_independent_of_detection;
    Alcotest.test_case "mtrt races" `Quick test_mtrt_races;
    Alcotest.test_case "mtrt join idiom vs Eraser" `Quick
      test_mtrt_eraser_flags_join_idiom;
    Alcotest.test_case "tsp races" `Quick test_tsp_races;
    Alcotest.test_case "sor2 barrier races" `Quick test_sor2_races_are_barrier_protocol;
    Alcotest.test_case "elevator race-free" `Quick test_elevator_race_free;
    Alcotest.test_case "hedc races" `Quick test_hedc_races;
    Alcotest.test_case "hedc FieldsMerged superset" `Quick
      test_hedc_fields_merged_superset;
    Alcotest.test_case "NoOwnership explodes" `Quick test_no_ownership_explodes;
    Alcotest.test_case "perf configs agree" `Quick test_table2_configs_agree_on_races;
    Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
    Alcotest.test_case "seed sweep" `Quick test_seed_sweep_stability;
    Alcotest.test_case "schedule sweep" `Quick test_sweep_aggregation;
    Alcotest.test_case "sor hoisting claim (8.1)" `Quick test_sor_hoisting_claim;
    Alcotest.test_case "loc counts" `Quick test_loc_counts;
  ]
