(* Integration tests for the assembled detector pipeline: statistics,
   per-location report deduplication (Definition 1) and the interaction
   of the optimizer stages. *)

open Drd_core
open Event

let mk ?(locks = []) ~loc ~thread ~kind ~site () =
  make ~loc ~thread ~locks:(Lockset.of_list locks) ~kind ~site

let test_stats_pipeline () =
  let coll = Report.collector () in
  let d = Detector.create ~config:Detector.default_config coll in
  (* T0 initializes, T1 reads twice (second read cache-filtered), then T0
     writes again: exactly one race on one location. *)
  Detector.on_access d (mk ~loc:1 ~thread:0 ~kind:Write ~site:1 ());
  Detector.on_access d (mk ~loc:1 ~thread:1 ~kind:Read ~site:2 ());
  Detector.on_access d (mk ~loc:1 ~thread:1 ~kind:Read ~site:2 ());
  Detector.on_access d (mk ~loc:1 ~thread:0 ~kind:Write ~site:3 ());
  let s = Detector.stats d in
  Alcotest.(check int) "events in" 4 s.Detector.events_in;
  Alcotest.(check int) "cache hits" 1 s.Detector.cache_hits;
  Alcotest.(check int) "ownership filtered" 1 s.Detector.ownership_filtered;
  Alcotest.(check int) "races" 1 s.Detector.races_reported;
  Alcotest.(check int) "one location tracked" 1 s.Detector.locations_tracked

let test_report_dedup_per_location () =
  let coll = Report.collector () in
  let d =
    Detector.create
      ~config:{ Detector.default_config with use_ownership = false; use_cache = false }
      coll
  in
  (* Many racing accesses on the same location: one report. *)
  for i = 1 to 10 do
    Detector.on_access d (mk ~loc:1 ~thread:(i mod 2) ~kind:Write ~site:i ())
  done;
  Alcotest.(check int) "one location reported" 1 (Report.count coll);
  (* A second racy location gets its own report. *)
  Detector.on_access d (mk ~loc:2 ~thread:0 ~kind:Write ~site:90 ());
  Detector.on_access d (mk ~loc:2 ~thread:1 ~kind:Write ~site:91 ());
  Alcotest.(check int) "two locations reported" 2 (Report.count coll);
  Alcotest.(check (list int)) "racy locations in order" [ 1; 2 ]
    (Report.racy_locs coll)

let test_report_contents () =
  let coll = Report.collector () in
  let d =
    Detector.create
      ~config:{ Detector.default_config with use_ownership = false; use_cache = false }
      coll
  in
  Detector.on_access d (mk ~loc:3 ~thread:1 ~locks:[ 8 ] ~kind:Write ~site:41 ());
  Detector.on_access d (mk ~loc:3 ~thread:2 ~locks:[ 9 ] ~kind:Read ~site:42 ());
  match Report.races coll with
  | [ r ] ->
      Alcotest.(check int) "location" 3 r.Report.loc;
      Alcotest.(check int) "current thread" 2 r.Report.current.thread;
      Alcotest.(check int) "current site" 42 r.Report.current.site;
      Alcotest.(check bool) "prior thread known" true
        (r.Report.prior.Trie.p_thread = Thread 1);
      Alcotest.(check (list int)) "prior lockset" [ 8 ]
        (Lockset_id.to_sorted_list r.Report.prior.Trie.p_locks)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_prior_thread_bot_when_merged () =
  (* Section 3.1: once two threads access with the same lockset, the
     stored thread degrades to t_bot and the specific earlier thread can
     no longer be reported. *)
  let coll = Report.collector () in
  let d =
    Detector.create
      ~config:{ Detector.default_config with use_ownership = false; use_cache = false }
      coll
  in
  Detector.on_access d (mk ~loc:3 ~thread:1 ~locks:[ 8 ] ~kind:Write ~site:1 ());
  Detector.on_access d (mk ~loc:3 ~thread:2 ~locks:[ 8 ] ~kind:Write ~site:2 ());
  Detector.on_access d (mk ~loc:3 ~thread:3 ~locks:[ 9 ] ~kind:Write ~site:3 ());
  match Report.races coll with
  | [ r ] ->
      Alcotest.(check bool) "prior thread is t_bot" true
        (r.Report.prior.Trie.p_thread = Bot)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_pp_smoke () =
  (* Rendering reports with a names registry. *)
  let names = Names.create () in
  Names.register_loc names 3 "Task#1.thread_";
  Names.register_site names 41 "Task.run:10 (write thread_)";
  Names.register_site names 42 "Task.cancel:20 (read thread_)";
  Names.register_lock names 8 "this(Task#1)";
  let coll = Report.collector () in
  let d =
    Detector.create
      ~config:{ Detector.default_config with use_ownership = false; use_cache = false }
      coll
  in
  Detector.on_access d (mk ~loc:3 ~thread:1 ~locks:[ 8 ] ~kind:Write ~site:41 ());
  Detector.on_access d (mk ~loc:3 ~thread:2 ~locks:[ 9 ] ~kind:Read ~site:42 ());
  let out = Fmt.str "%a" (Report.pp names) coll in
  Alcotest.(check bool) "mentions location name" true
    (Astring_contains.contains out "Task#1.thread_");
  Alcotest.(check bool) "mentions lock name" true
    (Astring_contains.contains out "this(Task#1)");
  let s = Fmt.str "%a" Detector.pp_stats (Detector.stats d) in
  Alcotest.(check bool) "stats render" true (String.length s > 0)

let test_thread_exit_drops_cache () =
  let coll = Report.collector () in
  let d = Detector.create ~config:Detector.default_config coll in
  Detector.on_access d (mk ~loc:1 ~thread:5 ~kind:Read ~site:1 ());
  Detector.on_thread_exit d ~thread:5;
  (* Re-accessing after exit must not hit a stale cache (a new cache is
     created transparently). *)
  Detector.on_access d (mk ~loc:1 ~thread:5 ~kind:Read ~site:1 ());
  let s = Detector.stats d in
  Alcotest.(check int) "no cache hit across exit" 0 s.Detector.cache_hits

let test_hot_path_zero_alloc () =
  (* The hot entry point must not allocate for events dropped by the
     cache or by the ownership filter.  Warm the detector up so the
     steady state is reached (tries built, caches populated, locksets
     interned), then measure minor-heap words across a tight loop. *)
  let coll = Report.collector () in
  (* Cache-hit path: the repeated read is dropped by the per-thread
     cache before anything downstream runs. *)
  let d_cache = Detector.create ~config:Detector.default_config coll in
  (* Ownership path: with the cache off, every repeated access by the
     owning thread takes the Owned_skip branch. *)
  let d_own =
    Detector.create
      ~config:{ Detector.default_config with Detector.use_cache = false }
      coll
  in
  let locks = Lockset_id.of_list [ 7 ] in
  Detector.on_access_interned d_cache ~loc:2 ~thread:1 ~locks ~kind:Read
    ~site:3;
  Detector.on_access_interned d_own ~loc:1 ~thread:0 ~locks ~kind:Write
    ~site:1;
  let n = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    Detector.on_access_interned d_cache ~loc:2 ~thread:1 ~locks ~kind:Read
      ~site:3;
    Detector.on_access_interned d_own ~loc:1 ~thread:0 ~locks ~kind:Write
      ~site:1
  done;
  let words = Gc.minor_words () -. before in
  let sc = Detector.stats d_cache and so = Detector.stats d_own in
  Alcotest.(check bool) "loop events were cache hits"
    true (sc.Detector.cache_hits >= n);
  Alcotest.(check bool) "loop events were ownership filtered"
    true (so.Detector.ownership_filtered >= n);
  (* 2n events; allow a small constant slack for the Gc calls
     themselves, but nowhere near one allocation per event. *)
  Alcotest.(check bool)
    (Printf.sprintf "minor words per event ~ 0 (measured %.0f for %d events)"
       words (2 * n))
    true
    (words < float_of_int n /. 10.)

let suite =
  [
    Alcotest.test_case "stats pipeline" `Quick test_stats_pipeline;
    Alcotest.test_case "hot path allocation-free" `Quick
      test_hot_path_zero_alloc;
    Alcotest.test_case "report dedup per location" `Quick test_report_dedup_per_location;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "prior thread t_bot" `Quick test_prior_thread_bot_when_merged;
    Alcotest.test_case "pretty printing" `Quick test_pp_smoke;
    Alcotest.test_case "thread exit drops cache" `Quick test_thread_exit_drops_cache;
  ]
