(* Additional VM semantics coverage: recursion, scoping, reference
   semantics, scheduler variation, and interpreter edge cases. *)

let check_ints msg expected outcome =
  Alcotest.(check (list (pair string int)))
    msg expected
    (Pipe.ints outcome.Pipe.prints)

let test_recursion () =
  let out =
    Pipe.run
      {|
      class Math2 {
        static int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        static int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
        static int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
      }
      class Main {
        static void main() {
          print("fib", Math2.fib(15));
          print("even", Math2.even(100));
          print("odd", Math2.odd(99));
        }
      }
    |}
  in
  check_ints "recursion" [ ("fib", 610); ("even", 1); ("odd", 1) ] out

let test_shadowing_and_scopes () =
  let out =
    Pipe.run
      {|
      class Main {
        static void main() {
          int x = 1;
          if (x == 1) {
            int y = 10;
            x = x + y;
          }
          for (int i = 0; i < 2; i = i + 1) {
            int y = 100;       // fresh scope: fine
            x = x + y;
          }
          print("x", x);
        }
      }
    |}
  in
  ignore out;
  check_ints "scopes" [ ("x", 211) ] out

let test_reference_semantics () =
  let out =
    Pipe.run
      {|
      class Box { int v; }
      class Main {
        static void bump(Box b) { b.v = b.v + 1; }
        static void main() {
          Box a = new Box();
          Box b = a;             // alias
          bump(a); bump(b);
          print("v", a.v);       // 2
          Box[] arr = new Box[2];
          arr[0] = a; arr[1] = new Box();
          arr[1].v = 7;
          print("sum", arr[0].v + arr[1].v);  // 9
          print("eq", 0 + (1 - 1));
          if (a == b) { print("alias", 1); } else { print("alias", 0); }
          if (a == arr[1]) { print("neq", 1); } else { print("neq", 0); }
          if (a != null) { print("nn", 1); }
        }
      }
    |}
  in
  check_ints "refs"
    [ ("v", 2); ("sum", 9); ("eq", 0); ("alias", 1); ("neq", 0); ("nn", 1) ]
    out

let test_negative_arithmetic () =
  let out =
    Pipe.run
      {|
      class Main {
        static void main() {
          int a = 0 - 7;
          print("div", a / 2);     // OCaml/Java truncate toward zero: -3
          print("mod", a % 3);     // -1
          print("neg", -a);
          boolean t = a < 0 && !(a > 0);
          if (t) { print("sign", 1); }
        }
      }
    |}
  in
  check_ints "negatives" [ ("div", -3); ("mod", -1); ("neg", 7); ("sign", 1) ] out

let test_quantum_invariance () =
  (* Synchronized programs compute the same result whatever the slice
     length. *)
  List.iter
    (fun quantum ->
      let out = Pipe.run ~quantum (Test_vm.counter_src ~sync:true) in
      check_ints (Printf.sprintf "quantum %d" quantum) [ ("n", 100) ] out)
    [ 1; 2; 5; 50; 500 ]

let test_many_threads () =
  let out =
    Pipe.run
      {|
      class Acc { int total; synchronized void add(int v) { total = total + v; } }
      class W extends Thread {
        Acc a; int v;
        W(Acc a0, int v0) { a = a0; v = v0; }
        void run() { a.add(v); }
      }
      class Main {
        static void main() {
          Acc acc = new Acc();
          W[] ws = new W[10];
          for (int i = 0; i < 10; i = i + 1) { ws[i] = new W(acc, i + 1); }
          for (int i = 0; i < 10; i = i + 1) { ws[i].start(); }
          for (int i = 0; i < 10; i = i + 1) { ws[i].join(); }
          print("total", acc.total);
        }
      }
    |}
  in
  check_ints "ten workers" [ ("total", 55) ] out;
  Alcotest.(check int) "eleven threads" 11 out.Pipe.result.Drd_vm.Interp.r_max_threads;
  Alcotest.(check (list string)) "no races" [] out.Pipe.race_locs

let test_join_unstarted_thread () =
  let out =
    Pipe.run
      {| class W extends Thread { void run() { } }
         class Main { static void main() { W w = new W(); w.join(); print("ok", 1); } } |}
  in
  check_ints "join before start returns" [ ("ok", 1) ] out

let test_yield_is_legal_anywhere () =
  let out =
    Pipe.run
      {|
      class Main {
        static void main() {
          int s = 0;
          for (int i = 0; i < 5; i = i + 1) {
            Thread.yield();
            s = s + i;
          }
          print("s", s);
        }
      }
    |}
  in
  check_ints "yield" [ ("s", 10) ] out

let test_print_bool () =
  let out =
    Pipe.run
      {| class Main { static void main() { print("b", 1 < 2); print("c", false); } } |}
  in
  match out.Pipe.prints with
  | [ ("b", Some (Drd_vm.Value.Vbool true)); ("c", Some (Drd_vm.Value.Vbool false)) ] -> ()
  | _ -> Alcotest.fail "boolean prints"

let test_instrumented_semantics_equal () =
  (* Instrumentation must never change observable behaviour: compare the
     prints of Base vs fully optimized runs on mixed workloads. *)
  let srcs =
    [ Test_vm.counter_src ~sync:true; Test_vm.figure2 ~same_pq:false ]
  in
  List.iter
    (fun src ->
      let base = Pipe.run_base src in
      let opt = Pipe.run ~static:true ~peel:true ~weaker:true src in
      Alcotest.(check (list (pair string int)))
        "same output"
        (Pipe.ints base.Drd_vm.Interp.r_prints)
        (Pipe.ints opt.Pipe.prints))
    srcs

let suite =
  [
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "scoping" `Quick test_shadowing_and_scopes;
    Alcotest.test_case "reference semantics" `Quick test_reference_semantics;
    Alcotest.test_case "negative arithmetic" `Quick test_negative_arithmetic;
    Alcotest.test_case "quantum invariance" `Quick test_quantum_invariance;
    Alcotest.test_case "many threads" `Quick test_many_threads;
    Alcotest.test_case "join unstarted" `Quick test_join_unstarted_thread;
    Alcotest.test_case "yield" `Quick test_yield_is_legal_anywhere;
    Alcotest.test_case "print booleans" `Quick test_print_bool;
    Alcotest.test_case "optimized semantics equal" `Quick test_instrumented_semantics_equal;
  ]
