(* End-to-end tests of the MiniJava VM: sequential semantics, object
   orientation, arrays, threads, monitors, and the interaction of the
   whole instrumented pipeline with the detector — including the paper's
   Figure 2 example. *)

module Value = Drd_vm.Value
module Interp = Drd_vm.Interp

let check_ints msg expected outcome =
  Alcotest.(check (list (pair string int))) msg expected (Pipe.ints outcome.Pipe.prints)

(* Check reported race locations by substring patterns (heap ids in the
   decoded names depend on allocation order, so exact names are
   brittle). *)
let check_races msg patterns out =
  let locs = out.Pipe.race_locs in
  Alcotest.(check int) (msg ^ ": count") (List.length patterns) (List.length locs);
  List.iter2
    (fun pat loc ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s matches %s" msg loc pat)
        true
        (Astring_contains.contains loc pat))
    (List.sort compare patterns)
    locs

let test_arith_and_arrays () =
  let out =
    Pipe.run
      {|
      class Main {
        static void main() {
          int x = 2 + 3 * 4;
          print("x", x);
          int y = (20 - 2) / 3 % 4;
          print("y", y);
          int[] a = new int[5];
          for (int i = 0; i < a.length; i = i + 1) { a[i] = i * i; }
          print("a4", a[4]);
          print("len", a.length);
          boolean b = x > 10 && y < 3 || false;
          if (b) { print("b", 1); } else { print("b", 0); }
        }
      }
    |}
  in
  check_ints "arith" [ ("x", 14); ("y", 2); ("a4", 16); ("len", 5); ("b", 1) ] out;
  Alcotest.(check int) "no races" 0 (List.length out.Pipe.races)

let test_control_flow () =
  let out =
    Pipe.run
      {|
      class Main {
        static void main() {
          int sum = 0;
          int i = 0;
          while (true) {
            i = i + 1;
            if (i % 2 == 0) { continue; }
            if (i > 9) { break; }
            sum = sum + i;
          }
          print("sum", sum);  // 1+3+5+7+9 = 25
          int f = 1;
          for (int k = 1; k <= 5; k = k + 1) { f = f * k; }
          print("fact", f);
        }
      }
    |}
  in
  check_ints "control" [ ("sum", 25); ("fact", 120) ] out

let test_objects_dispatch () =
  let out =
    Pipe.run
      {|
      class A {
        int v;
        A(int v0) { v = v0; }
        int get() { return v; }
        int twice() { return this.get() * 2; }
      }
      class B extends A {
        B(int v0) { v = v0 + 100; }
        int get() { return v + 1; }
      }
      class Main {
        static void main() {
          A a = new A(5);
          A b = new B(5);
          print("a", a.twice());    // 10
          print("b", b.twice());    // (105+1)*2 = 212
          print("bv", b.v);         // 105
        }
      }
    |}
  in
  check_ints "dispatch" [ ("a", 10); ("b", 212); ("bv", 105) ] out

let test_static_fields_and_methods () =
  let out =
    Pipe.run
      {|
      class Util {
        static int counter;
        static int next() { counter = counter + 1; return counter; }
        static int abs(int x) { if (x < 0) { return 0 - x; } return x; }
      }
      class Main {
        static void main() {
          print("n1", Util.next());
          print("n2", Util.next());
          print("abs", Util.abs(0 - 42));
          print("c", Util.counter);
        }
      }
    |}
  in
  check_ints "statics" [ ("n1", 1); ("n2", 2); ("abs", 42); ("c", 2) ] out

let test_multidim_arrays () =
  let out =
    Pipe.run
      {|
      class Main {
        static void main() {
          int[][] m = new int[3][4];
          for (int i = 0; i < 3; i = i + 1) {
            for (int j = 0; j < 4; j = j + 1) { m[i][j] = i * 10 + j; }
          }
          print("m23", m[2][3]);
          print("rows", m.length);
          print("cols", m[0].length);
        }
      }
    |}
  in
  check_ints "multidim" [ ("m23", 23); ("rows", 3); ("cols", 4) ] out

let counter_src ~sync =
  Printf.sprintf
    {|
    class Counter { int n; %s void inc() { n = n + 1; } }
    class Worker extends Thread {
      Counter c; int iters;
      void run() { for (int i = 0; i < iters; i = i + 1) { c.inc(); } }
    }
    class Main {
      static void main() {
        Counter c = new Counter();
        Worker w1 = new Worker(); w1.c = c; w1.iters = 50;
        Worker w2 = new Worker(); w2.c = c; w2.iters = 50;
        w1.start(); w2.start();
        w1.join(); w2.join();
        print("n", c.n);
      }
    }
  |}
    (if sync then "synchronized" else "")

let test_threads_synchronized_counter () =
  let out = Pipe.run (counter_src ~sync:true) in
  check_ints "counter value" [ ("n", 100) ] out;
  Alcotest.(check (list string)) "no races with synchronization" []
    out.Pipe.race_locs;
  Alcotest.(check int) "three threads" 3 out.Pipe.result.Interp.r_max_threads

let test_threads_unsynchronized_counter_races () =
  let out = Pipe.run (counter_src ~sync:false) in
  check_races "race on Counter.n" [ "Counter#"; ] out |> ignore;
  check_races "race on Counter.n" [ ".n" ] out

(* The paper's Figure 2, with all object references aliased to [x]. *)
let figure2 ~same_pq =
  Printf.sprintf
    {|
    class Data { int f; int g; }
    class T1 extends Thread {
      Data a; Data b; Object p;
      synchronized void foo() {
        a.f = 50;                       // T11
        synchronized (p) { b.g = b.f; } // T13, T14
      }
      void run() { foo(); }
    }
    class T2 extends Thread {
      Data d; Object q;
      void bar() { synchronized (q) { d.f = 10; } } // T20, T21
      void run() { bar(); }
    }
    class Main {
      static void main() {
        Data x = new Data();
        x.f = 100;                      // T01
        Object shared = new Object();
        T1 t1 = new T1(); t1.a = x; t1.b = x; t1.p = %s;
        T2 t2 = new T2(); t2.d = x; t2.q = %s;
        t1.start();                     // T04
        t2.start();                     // T05
        t1.join(); t2.join();
      }
    }
  |}
    (if same_pq then "shared" else "new Object()")
    (if same_pq then "shared" else "new Object()")

let test_figure2 () =
  let out = Pipe.run (figure2 ~same_pq:false) in
  check_races "race on x.f only; T01 ordered by start" [ ".f" ] out

let test_figure2_feasible_race () =
  (* With p == q the happened-before tools would order T11 before T21 via
     the common lock and miss the feasible race; our lockset-based
     definition still reports it (Section 2.2). *)
  let races = ref [] in
  List.iter
    (fun seed ->
      let out = Pipe.run ~seed (figure2 ~same_pq:true) in
      races := out.Pipe.race_locs :: !races)
    [ 1; 7; 42; 1234 ];
  List.iter
    (fun locs ->
      Alcotest.(check int) "one race per schedule" 1 (List.length locs);
      Alcotest.(check bool) "feasible race on .f" true
        (Astring_contains.contains (List.hd locs) ".f"))
    !races

let test_monitor_mutual_exclusion () =
  (* With synchronization, increments are atomic: read-modify-write under
     a lock can never interleave, so the counter is exact under any
     seed. *)
  List.iter
    (fun seed ->
      let out = Pipe.run ~seed (counter_src ~sync:true) in
      check_ints "exact counter" [ ("n", 100) ] out)
    [ 1; 2; 3; 99; 12345 ]

let test_reentrant_monitor () =
  let out =
    Pipe.run
      {|
      class R {
        int v;
        synchronized void outer() { this.inner(); }
        synchronized void inner() { v = v + 1; }
      }
      class Main {
        static void main() {
          R r = new R();
          r.outer();
          print("v", r.v);
        }
      }
    |}
  in
  check_ints "reentrancy" [ ("v", 1) ] out

let test_join_semantics () =
  (* Parent must observe the child's writes after join, under any seed. *)
  List.iter
    (fun seed ->
      let out =
        Pipe.run ~seed
          {|
          class W extends Thread {
            int result;
            void run() {
              int acc = 0;
              for (int i = 1; i <= 10; i = i + 1) { acc = acc + i; }
              result = acc;
            }
          }
          class Main {
            static void main() {
              W w = new W();
              w.start();
              w.join();
              print("r", w.result);
            }
          }
        |}
      in
      check_ints "join waits" [ ("r", 55) ] out;
      Alcotest.(check (list string)) "join orders accesses" []
        out.Pipe.race_locs)
    [ 1; 5; 42 ]

let expect_error msg pattern f =
  match f () with
  | exception Interp.Runtime_error m ->
      Alcotest.(check bool)
        (msg ^ ": got " ^ m)
        true
        (Astring_contains.contains m pattern)
  | _ -> Alcotest.fail (msg ^ ": expected a runtime error")

let test_runtime_errors () =
  expect_error "null deref" "NullPointerException" (fun () ->
      Pipe.run
        {| class A { int f; }
           class Main { static void main() { A a = null; print("x", a.f); } } |});
  expect_error "bounds" "ArrayIndexOutOfBounds" (fun () ->
      Pipe.run
        {| class Main { static void main() { int[] a = new int[2]; print("x", a[5]); } } |});
  expect_error "div by zero" "division by zero" (fun () ->
      Pipe.run
        {| class Main { static void main() { int z = 0; print("x", 1 / z); } } |});
  expect_error "missing return" "missing return" (fun () ->
      Pipe.run
        {| class Main {
             static int f(boolean b) { if (b) { return 1; } }
             static void main() { print("x", f(false)); } } |});
  expect_error "double start" "started twice" (fun () ->
      Pipe.run
        {| class W extends Thread { void run() { } }
           class Main { static void main() { W w = new W(); w.start(); w.start(); } } |})

let test_deadlock_detected () =
  expect_error "deadlock" "deadlock" (fun () ->
      Pipe.run
        {|
        class L { }
        class W extends Thread {
          L a; L b;
          void run() {
            synchronized (a) {
              int spin = 0;
              for (int i = 0; i < 300; i = i + 1) { spin = spin + 1; }
              synchronized (b) { spin = spin + 1; }
            }
          }
        }
        class Main {
          static void main() {
            L l1 = new L(); L l2 = new L();
            W w1 = new W(); w1.a = l1; w1.b = l2;
            W w2 = new W(); w2.a = l2; w2.b = l1;
            w1.start(); w2.start();
            w1.join(); w2.join();
          }
        }
      |})

let test_determinism () =
  let run () =
    let out = Pipe.run ~seed:7 (counter_src ~sync:false) in
    (out.Pipe.race_locs, out.Pipe.stats.Drd_core.Detector.events_in,
     out.Pipe.result.Interp.r_steps)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical reruns" true (a = b)

let test_thread_default_run () =
  (* A bare Thread has an empty run(). *)
  let out =
    Pipe.run
      {| class Main {
           static void main() {
             Thread t = new Thread();
             t.start(); t.join();
             print("ok", 1);
           } } |}
  in
  check_ints "bare thread" [ ("ok", 1) ] out

let suite =
  [
    Alcotest.test_case "arith and arrays" `Quick test_arith_and_arrays;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "objects and dispatch" `Quick test_objects_dispatch;
    Alcotest.test_case "static members" `Quick test_static_fields_and_methods;
    Alcotest.test_case "multi-dim arrays" `Quick test_multidim_arrays;
    Alcotest.test_case "synchronized counter" `Quick test_threads_synchronized_counter;
    Alcotest.test_case "unsynchronized counter races" `Quick
      test_threads_unsynchronized_counter_races;
    Alcotest.test_case "figure 2" `Quick test_figure2;
    Alcotest.test_case "figure 2 feasible race" `Quick test_figure2_feasible_race;
    Alcotest.test_case "monitor mutual exclusion" `Quick test_monitor_mutual_exclusion;
    Alcotest.test_case "reentrant monitor" `Quick test_reentrant_monitor;
    Alcotest.test_case "join semantics" `Quick test_join_semantics;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "bare Thread" `Quick test_thread_default_run;
  ]
