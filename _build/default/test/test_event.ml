(* Unit and property tests for the event representation, the IsRace
   predicate and the weaker-than lattice (paper Sections 2.4 and 3.1). *)

open Drd_core
open Event

let ls = Lockset.of_list

let ev ?(loc = 0) ?(thread = 0) ?(locks = []) ?(kind = Read) ?(site = 0) () =
  make ~loc ~thread ~locks:(ls locks) ~kind ~site

(* Generators for property tests: a small universe so collisions are
   frequent. *)
let gen_kind = QCheck.Gen.oneofl [ Read; Write ]

let gen_locks = QCheck.Gen.(map ls (list_size (int_bound 3) (int_bound 4)))

let gen_event =
  QCheck.Gen.(
    map
      (fun (loc, thread, locks, kind) ->
        make ~loc ~thread ~locks ~kind ~site:0)
      (quad (int_bound 3) (int_bound 3) gen_locks gen_kind))

let arb_event =
  QCheck.make ~print:(Fmt.to_to_string pp) gen_event

let test_lockset_basics () =
  Alcotest.(check bool) "empty disjoint" true
    (Lockset.disjoint Lockset.empty Lockset.empty);
  Alcotest.(check bool) "subset refl" true (Lockset.subset (ls [ 1; 2 ]) (ls [ 1; 2 ]));
  Alcotest.(check bool) "subset" true (Lockset.subset (ls [ 1 ]) (ls [ 1; 2 ]));
  Alcotest.(check bool) "not subset" false (Lockset.subset (ls [ 3 ]) (ls [ 1; 2 ]));
  Alcotest.(check (list int)) "sorted" [ 1; 2; 9 ] (Lockset.to_sorted_list (ls [ 9; 1; 2; 1 ]));
  Alcotest.(check bool) "disjoint" true (Lockset.disjoint (ls [ 1 ]) (ls [ 2 ]));
  Alcotest.(check bool) "overlap" false (Lockset.disjoint (ls [ 1; 2 ]) (ls [ 2; 3 ]))

let test_is_race () =
  let w1 = ev ~thread:1 ~kind:Write () in
  let r2 = ev ~thread:2 ~kind:Read () in
  Alcotest.(check bool) "write/read different threads no locks" true (is_race w1 r2);
  Alcotest.(check bool) "same thread" false (is_race w1 (ev ~thread:1 ~kind:Write ()));
  Alcotest.(check bool) "both reads" false (is_race (ev ~thread:1 ()) r2);
  Alcotest.(check bool) "common lock" false
    (is_race (ev ~thread:1 ~kind:Write ~locks:[ 7 ] ()) (ev ~thread:2 ~kind:Write ~locks:[ 7; 8 ] ()));
  Alcotest.(check bool) "different locations" false
    (is_race (ev ~loc:1 ~thread:1 ~kind:Write ()) (ev ~loc:2 ~thread:2 ~kind:Write ()));
  Alcotest.(check bool) "symmetric" true (is_race r2 w1)

let test_lattice_orders () =
  Alcotest.(check bool) "W leq R" true (kind_leq Write Read);
  Alcotest.(check bool) "R nleq W" false (kind_leq Read Write);
  Alcotest.(check bool) "bot leq t" true (thread_leq Bot (Thread 4));
  Alcotest.(check bool) "t nleq bot" false (thread_leq (Thread 4) Bot);
  Alcotest.(check bool) "t leq t" true (thread_leq (Thread 4) (Thread 4));
  Alcotest.(check bool) "t nleq t'" false (thread_leq (Thread 4) (Thread 5))

let test_meets () =
  Alcotest.(check bool) "kind meet differs" true (kind_meet Read Write = Write);
  Alcotest.(check bool) "kind meet same" true (kind_meet Read Read = Read);
  Alcotest.(check bool) "thread meet top id" true (thread_meet Top (Thread 3) = Thread 3);
  Alcotest.(check bool) "thread meet differs" true (thread_meet (Thread 1) (Thread 2) = Bot);
  Alcotest.(check bool) "thread meet bot absorbs" true (thread_meet Bot (Thread 1) = Bot)

(* Theorem 1: p weaker-than q implies every race of q is a race of p. *)
let prop_weaker_than_theorem =
  QCheck.Test.make ~count:2000 ~name:"weaker-than theorem"
    (QCheck.triple arb_event arb_event arb_event) (fun (p, q, r) ->
      QCheck.assume (weaker_than p q);
      (not (is_race q r)) || is_race p r)

(* The weaker-than relation is a partial order. *)
let prop_weaker_than_po =
  QCheck.Test.make ~count:2000 ~name:"weaker-than is a partial order"
    (QCheck.triple arb_event arb_event arb_event) (fun (p, q, r) ->
      weaker_than p p
      && ((not (weaker_than p q && weaker_than q r)) || weaker_than p r))

(* Meets are commutative, associative, idempotent and lower bounds. *)
let prop_meet_laws =
  let gen_ti =
    QCheck.make
      ~print:(Fmt.to_to_string pp_thread_info)
      QCheck.Gen.(oneof [ map (fun i -> Thread i) (int_bound 3); return Bot; return Top ])
  in
  QCheck.Test.make ~count:2000 ~name:"thread meet laws"
    (QCheck.triple gen_ti gen_ti gen_ti) (fun (a, b, c) ->
      thread_meet a b = thread_meet b a
      && thread_meet a (thread_meet b c) = thread_meet (thread_meet a b) c
      && thread_meet a a = a
      (* The lower-bound law holds below Top; Top itself is only the "no
         access" marker and is not comparable via ⊑. *)
      && (a = Top || thread_leq (thread_meet a b) a))

let prop_kind_meet_lower_bound =
  let gen = QCheck.make QCheck.Gen.(oneofl [ Read; Write ]) in
  QCheck.Test.make ~count:100 ~name:"kind meet is a lower bound" (QCheck.pair gen gen)
    (fun (a, b) -> kind_leq (kind_meet a b) a && kind_leq (kind_meet a b) b)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_weaker_than_theorem;
      prop_weaker_than_po;
      prop_meet_laws;
      prop_kind_meet_lower_bound;
    ]

let suite =
  [
    Alcotest.test_case "lockset basics" `Quick test_lockset_basics;
    Alcotest.test_case "is_race" `Quick test_is_race;
    Alcotest.test_case "lattice orders" `Quick test_lattice_orders;
    Alcotest.test_case "meets" `Quick test_meets;
  ]
  @ qsuite
