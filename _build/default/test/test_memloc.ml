(* Tests for the memory-location id encoding: injectivity across
   location classes, FieldsMerged semantics, and name decoding. *)

module Memloc = Drd_vm.Memloc

let test_injective_per_field () =
  let gran = Memloc.Per_field in
  let ids = Hashtbl.create 64 in
  let add what id =
    (match Hashtbl.find_opt ids id with
    | Some other -> Alcotest.failf "collision: %s and %s -> %d" what other id
    | None -> ());
    Hashtbl.add ids id what
  in
  for obj = 0 to 20 do
    for index = 0 to 9 do
      add (Printf.sprintf "field %d.%d" obj index) (Memloc.field ~gran ~obj ~index)
    done;
    add (Printf.sprintf "array %d" obj) (Memloc.array ~gran ~obj)
  done;
  for slot = 0 to 50 do
    add (Printf.sprintf "static %d" slot) (Memloc.static ~gran ~slot)
  done

let test_fields_merged_collapses () =
  let gran = Memloc.Per_object in
  Alcotest.(check int) "two fields merge"
    (Memloc.field ~gran ~obj:5 ~index:0)
    (Memloc.field ~gran ~obj:5 ~index:3);
  Alcotest.(check int) "array merges with fields"
    (Memloc.field ~gran ~obj:5 ~index:0)
    (Memloc.array ~gran ~obj:5);
  Alcotest.(check bool) "objects stay distinct" true
    (Memloc.field ~gran ~obj:5 ~index:0 <> Memloc.field ~gran ~obj:6 ~index:0);
  (* Statics of the same class are still distinguished (paper Table 3
     note). *)
  Alcotest.(check bool) "statics distinct" true
    (Memloc.static ~gran ~slot:0 <> Memloc.static ~gran ~slot:1);
  Alcotest.(check bool) "static distinct from object" true
    (Memloc.static ~gran ~slot:5 <> Memloc.field ~gran ~obj:0 ~index:0)

let test_field_limit () =
  Alcotest.check_raises "too many fields"
    (Invalid_argument "Memloc.field: too many fields") (fun () ->
      ignore (Memloc.field ~gran:Memloc.Per_field ~obj:1 ~index:1022))

let test_nonnegative () =
  (* Lock/loc ids must be non-negative (the cache uses -1 as the invalid
     marker and the trie root uses label -1). *)
  let gran = Memloc.Per_field in
  Alcotest.(check bool) "field" true (Memloc.field ~gran ~obj:0 ~index:0 >= 0);
  Alcotest.(check bool) "array" true (Memloc.array ~gran ~obj:0 >= 0);
  Alcotest.(check bool) "static" true (Memloc.static ~gran ~slot:0 >= 0)

let suite =
  [
    Alcotest.test_case "injective (per-field)" `Quick test_injective_per_field;
    Alcotest.test_case "FieldsMerged collapses" `Quick test_fields_merged_collapses;
    Alcotest.test_case "field limit" `Quick test_field_limit;
    Alcotest.test_case "non-negative" `Quick test_nonnegative;
  ]
