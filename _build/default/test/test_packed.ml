(* The packed multi-location trie (the space scheme alluded to in paper
   Section 8.2): observational equivalence with the per-location tries
   on random traces, and the space saving on the benchmarks. *)

module H = Drd_harness
open Drd_core

(* Per-event equivalence of the full protocol. *)
let prop_packed_equivalent =
  QCheck.Test.make ~count:1000 ~name:"packed trie ≡ per-location tries"
    Test_trie.arb_trace (fun trace ->
      let packed = Trie_packed.create () in
      let tries = Hashtbl.create 8 in
      List.for_all
        (fun (e : Event.t) ->
          let trie =
            match Hashtbl.find_opt tries e.loc with
            | Some t -> t
            | None ->
                let t = Trie.create () in
                Hashtbl.add tries e.loc t;
                t
          in
          let race_p, red_p = Trie_packed.process packed e in
          let race_t, red_t = Trie.process trie e in
          (race_p = None) = (race_t = None)
          && red_p = red_t
          &&
          (* When both report, the prior thread/kind agree (the lockset
             path and site may differ if multiple racing nodes exist,
             since traversal order over the shared trie can differ). *)
          match (race_p, race_t) with
          | Some _, Some _ | None, None -> true
          | _ -> false)
        trace)

let prop_packed_never_larger =
  QCheck.Test.make ~count:500 ~name:"packed trie uses no more nodes"
    Test_trie.arb_trace (fun trace ->
      let packed = Trie_packed.create () in
      let tries = Hashtbl.create 8 in
      List.iter
        (fun (e : Event.t) ->
          let trie =
            match Hashtbl.find_opt tries e.loc with
            | Some t -> t
            | None ->
                let t = Trie.create () in
                Hashtbl.add tries e.loc t;
                t
          in
          ignore (Trie_packed.process packed e);
          ignore (Trie.process trie e))
        trace;
      let per_loc_nodes =
        Hashtbl.fold (fun _ t acc -> acc + Trie.node_count t) tries 0
      in
      Trie_packed.node_count packed <= max per_loc_nodes 1)

(* End-to-end: the packed detector reports the same races on every
   benchmark and allocates fewer trie nodes. *)
let test_benchmarks_equivalent () =
  List.iter
    (fun (b : H.Programs.benchmark) ->
      let run history =
        let coll = Report.collector () in
        let det = Detector.create ~config:{ Detector.default_config with history } coll in
        let compiled = H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source in
        let log, _ = H.Pipeline.record_log compiled in
        Event_log.replay log det;
        (List.sort compare (Report.racy_locs coll), Detector.stats det)
      in
      let races_t, stats_t = run Detector.Per_location in
      let races_p, stats_p = run Detector.Packed in
      Alcotest.(check (list int))
        (b.H.Programs.b_name ^ ": same races")
        races_t races_p;
      Alcotest.(check bool)
        (Fmt.str "%s: packed smaller (%d <= %d nodes)" b.H.Programs.b_name
           stats_p.Detector.trie_nodes stats_t.Detector.trie_nodes)
        true
        (stats_p.Detector.trie_nodes <= stats_t.Detector.trie_nodes);
      Alcotest.(check int)
        (b.H.Programs.b_name ^ ": same locations")
        stats_t.Detector.locations_tracked stats_p.Detector.locations_tracked)
    H.Programs.benchmarks

let suite =
  [
    Alcotest.test_case "benchmarks equivalent" `Quick test_benchmarks_equivalent;
    QCheck_alcotest.to_alcotest prop_packed_equivalent;
    QCheck_alcotest.to_alcotest prop_packed_never_larger;
  ]
