(* Potential-deadlock detection via lock-order graphs — the Section 10
   future-work extension: cycles are found even in runs that happened
   not to deadlock, and gate locks suppress serialized cycles. *)

module Lock_order = Drd_core.Lock_order
module H = Drd_harness

let test_two_lock_cycle () =
  let t = Lock_order.create () in
  (* T1: a then b; T2: b then a — classic. *)
  Lock_order.on_acquire t ~thread:1 ~lock:10;
  Lock_order.on_acquire t ~thread:1 ~lock:20;
  Lock_order.on_release t ~thread:1 ~lock:20;
  Lock_order.on_release t ~thread:1 ~lock:10;
  Lock_order.on_acquire t ~thread:2 ~lock:20;
  Lock_order.on_acquire t ~thread:2 ~lock:10;
  Lock_order.on_release t ~thread:2 ~lock:10;
  Lock_order.on_release t ~thread:2 ~lock:20;
  match Lock_order.potential_deadlocks t with
  | [ r ] ->
      Alcotest.(check (list int)) "locks" [ 10; 20 ] r.Lock_order.dl_locks;
      Alcotest.(check (list int)) "threads" [ 1; 2 ] r.Lock_order.dl_threads
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_same_thread_no_report () =
  let t = Lock_order.create () in
  (* One thread acquiring in both orders cannot deadlock with itself. *)
  Lock_order.on_acquire t ~thread:1 ~lock:10;
  Lock_order.on_acquire t ~thread:1 ~lock:20;
  Lock_order.on_release t ~thread:1 ~lock:20;
  Lock_order.on_release t ~thread:1 ~lock:10;
  Lock_order.on_acquire t ~thread:1 ~lock:20;
  Lock_order.on_acquire t ~thread:1 ~lock:10;
  Lock_order.on_release t ~thread:1 ~lock:10;
  Lock_order.on_release t ~thread:1 ~lock:20;
  Alcotest.(check int) "no report" 0
    (List.length (Lock_order.potential_deadlocks t))

let test_gate_lock_suppresses () =
  let t = Lock_order.create () in
  (* Both opposite-order acquisitions happen under a common gate g=5:
     serialized, no deadlock possible. *)
  Lock_order.on_acquire t ~thread:1 ~lock:5;
  Lock_order.on_acquire t ~thread:1 ~lock:10;
  Lock_order.on_acquire t ~thread:1 ~lock:20;
  List.iter (fun l -> Lock_order.on_release t ~thread:1 ~lock:l) [ 20; 10; 5 ];
  Lock_order.on_acquire t ~thread:2 ~lock:5;
  Lock_order.on_acquire t ~thread:2 ~lock:20;
  Lock_order.on_acquire t ~thread:2 ~lock:10;
  List.iter (fun l -> Lock_order.on_release t ~thread:2 ~lock:l) [ 10; 20; 5 ];
  Alcotest.(check int) "gate lock suppresses" 0
    (List.length (Lock_order.potential_deadlocks t))

let test_gate_must_be_common () =
  let t = Lock_order.create () in
  (* Different gates do not serialize. *)
  Lock_order.on_acquire t ~thread:1 ~lock:5;
  Lock_order.on_acquire t ~thread:1 ~lock:10;
  Lock_order.on_acquire t ~thread:1 ~lock:20;
  List.iter (fun l -> Lock_order.on_release t ~thread:1 ~lock:l) [ 20; 10; 5 ];
  Lock_order.on_acquire t ~thread:2 ~lock:6;
  Lock_order.on_acquire t ~thread:2 ~lock:20;
  Lock_order.on_acquire t ~thread:2 ~lock:10;
  List.iter (fun l -> Lock_order.on_release t ~thread:2 ~lock:l) [ 10; 20; 6 ];
  Alcotest.(check int) "distinct gates do not suppress" 1
    (List.length (Lock_order.potential_deadlocks t))

let test_three_cycle () =
  let t = Lock_order.create () in
  let edge th a b =
    Lock_order.on_acquire t ~thread:th ~lock:a;
    Lock_order.on_acquire t ~thread:th ~lock:b;
    Lock_order.on_release t ~thread:th ~lock:b;
    Lock_order.on_release t ~thread:th ~lock:a
  in
  edge 1 10 20;
  edge 2 20 30;
  edge 3 30 10;
  match Lock_order.potential_deadlocks t with
  | [ r ] ->
      Alcotest.(check (list int)) "three locks" [ 10; 20; 30 ] r.Lock_order.dl_locks
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

(* End-to-end: a program whose opposite lock orders are serialized by
   join, so the run cannot deadlock — the graph still exposes the
   hazard. *)
let test_program_hazard () =
  let src =
    {|
    class L { }
    class First extends Thread {
      L a; L b;
      First(L x, L y) { a = x; b = y; }
      void run() { synchronized (a) { synchronized (b) { } } }
    }
    class Second extends Thread {
      L a; L b;
      Second(L x, L y) { a = x; b = y; }
      void run() { synchronized (b) { synchronized (a) { } } }
    }
    class Main {
      static void main() {
        L a = new L(); L b = new L();
        First f = new First(a, b);
        f.start();
        f.join();            // serializes the two threads
        Second s = new Second(a, b);
        s.start();
        s.join();
        print("ok", 1);
      }
    }
  |}
  in
  let _, r = H.Pipeline.run_source H.Config.full src in
  Alcotest.(check (list string)) "no datarace" [] r.H.Pipeline.races;
  Alcotest.(check int) "one potential deadlock" 1
    (List.length r.H.Pipeline.deadlocks)

let test_benchmarks_deadlock_free () =
  List.iter
    (fun (b : H.Programs.benchmark) ->
      let _, r = H.Pipeline.run_source H.Config.full b.H.Programs.b_source in
      Alcotest.(check int)
        (b.H.Programs.b_name ^ " has no lock-order cycles")
        0
        (List.length r.H.Pipeline.deadlocks))
    H.Programs.benchmarks

let suite =
  [
    Alcotest.test_case "two-lock cycle" `Quick test_two_lock_cycle;
    Alcotest.test_case "same thread quiet" `Quick test_same_thread_no_report;
    Alcotest.test_case "gate lock suppresses" `Quick test_gate_lock_suppresses;
    Alcotest.test_case "distinct gates report" `Quick test_gate_must_be_common;
    Alcotest.test_case "three-lock cycle" `Quick test_three_cycle;
    Alcotest.test_case "program hazard without deadlock" `Quick test_program_hazard;
    Alcotest.test_case "benchmarks deadlock-free" `Quick test_benchmarks_deadlock_free;
  ]
