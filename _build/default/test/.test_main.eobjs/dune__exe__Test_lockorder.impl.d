test/test_lockorder.ml: Alcotest Drd_core Drd_harness List
