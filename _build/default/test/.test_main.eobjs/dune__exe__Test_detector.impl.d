test/test_detector.ml: Alcotest Astring_contains Detector Drd_core Event Fmt List Lockset Names Report String Trie
