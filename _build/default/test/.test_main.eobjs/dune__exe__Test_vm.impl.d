test/test_vm.ml: Alcotest Astring_contains Drd_core Drd_vm List Pipe Printf
