test/test_instr.ml: Alcotest Astring_contains Drd_core Drd_instr List Pipe Printf
