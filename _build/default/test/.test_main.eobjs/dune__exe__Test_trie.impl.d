test/test_trie.ml: Alcotest Drd_core Dump Event Fmt Hashtbl List Lockset QCheck QCheck_alcotest Trie
