test/test_lang.ml: Alcotest Array Astring_contains Drd_lang Fmt List Option Printf String
