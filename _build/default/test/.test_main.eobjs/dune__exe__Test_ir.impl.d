test/test_ir.ml: Alcotest Astring_contains Drd_ir Fmt Hashtbl List Pipe String
