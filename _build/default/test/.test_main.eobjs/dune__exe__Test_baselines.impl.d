test/test_baselines.ml: Alcotest Astring_contains Drd_baselines Drd_core Event Fmt List Pipe Test_vm
