test/test_harness.ml: Alcotest Drd_harness Fmt List Option Unix
