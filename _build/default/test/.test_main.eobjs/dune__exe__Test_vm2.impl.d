test/test_vm2.ml: Alcotest Drd_vm List Pipe Printf Test_vm
