test/pipe.ml: Detector Drd_baselines Drd_core Drd_instr Drd_ir Drd_lang Drd_static Drd_vm Event List Report
