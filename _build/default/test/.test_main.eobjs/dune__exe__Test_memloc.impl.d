test/test_memloc.ml: Alcotest Drd_vm Hashtbl Printf
