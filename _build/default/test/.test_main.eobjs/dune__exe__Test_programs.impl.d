test/test_programs.ml: Alcotest Astring_contains Drd_harness Drd_vm Fmt List String
