test/test_postmortem.ml: Alcotest Array Detector Drd_core Drd_harness Event Event_log Filename Full_race List Option Printf QCheck QCheck_alcotest Report Sys
