test/test_optimize.ml: Alcotest Astring_contains Drd_harness Drd_instr Drd_ir Drd_lang Drd_vm Fmt List Option Pipe
