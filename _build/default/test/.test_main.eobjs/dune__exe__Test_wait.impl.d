test/test_wait.ml: Alcotest Astring_contains Drd_vm List Pipe Printf
