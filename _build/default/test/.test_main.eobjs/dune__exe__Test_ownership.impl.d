test/test_ownership.ml: Alcotest Detector Drd_core Event List Lockset Ownership Pseudo_lock Report
