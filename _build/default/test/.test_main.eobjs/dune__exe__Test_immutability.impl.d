test/test_immutability.ml: Alcotest Drd_core Drd_harness Event Option
