test/test_packed.ml: Alcotest Detector Drd_core Drd_harness Event Event_log Fmt Hashtbl List QCheck QCheck_alcotest Report Test_trie Trie Trie_packed
