test/test_static.ml: Alcotest Astring_contains Drd_core Drd_harness Drd_instr Drd_ir Drd_static Fmt List Pipe Printf String Test_vm
