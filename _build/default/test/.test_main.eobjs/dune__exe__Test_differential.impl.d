test/test_differential.ml: Alcotest Array Astring_contains Buffer Detector Drd_core Drd_harness Drd_ir Drd_vm Event Event_log Hashtbl List Printf QCheck QCheck_alcotest Report String
