test/test_event.ml: Alcotest Drd_core Event Fmt List Lockset QCheck QCheck_alcotest
