test/test_cache.ml: Alcotest Array Cache Detector Drd_core Event Hashtbl List Lockset Option Printf QCheck QCheck_alcotest Random Report String
