(* Tests for the instrumentation pipeline (paper Section 6): trace
   insertion, static weaker-than elimination, and loop peeling — both
   their static effect (trace counts) and their dynamic effect (event
   counts), plus the safety property the paper verified experimentally:
   the same races are reported with optimizations on and off. *)

module Insert = Drd_instr.Insert
module Static_weaker = Drd_instr.Static_weaker
module Peel = Drd_instr.Peel
module Detector = Drd_core.Detector

let compile_instrumented ?(peel = false) ?(weaker = false) source =
  let prog = Pipe.compile ~peel source in
  Insert.instrument prog;
  let removed = if weaker then Static_weaker.eliminate prog else 0 in
  (prog, removed)

let trace_count ?peel ?weaker source =
  let prog, _ = compile_instrumented ?peel ?weaker source in
  Insert.count_traces prog

let events ?peel ?weaker source =
  let out = Pipe.run ?peel ?weaker source in
  out.Pipe.stats.Detector.events_in

let test_insertion_counts () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void main() {
        A a = new A();
        a.f = 1;          // write trace
        int x = a.f;      // read trace
        int[] v = new int[3];
        v[0] = x;         // array write trace
        x = v[0];         // array read trace
        print("x", x);
      }
    }
  |}
  in
  Alcotest.(check int) "one trace per access" 4 (trace_count src)

let test_straightline_elimination () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void main() {
        A a = new A();
        a.f = 1;          // S1: covers S2 (write) and S3 (read)
        a.f = 2;          // S2: eliminated
        int x = a.f;      // S3: eliminated
        print("x", x);
      }
    }
  |}
  in
  Alcotest.(check int) "before elimination" 3 (trace_count src);
  Alcotest.(check int) "after elimination" 1 (trace_count ~weaker:true src)

let test_read_does_not_cover_write () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void main() {
        A a = new A();
        int x = a.f;      // read first
        a.f = 2;          // write: NOT covered by the read
        print("x", x);
      }
    }
  |}
  in
  (* The read trace is eliminated by nothing; the write is stronger than
     the read, so the read->write direction must not fire, but the write
     does not precede the read, so nothing is removed... except the read
     is covered by nothing.  Expect both to survive?  No: a_i ⊑ a_j
     requires a_i = W or a_i = a_j; read ⋢ write, so 2 remain. *)
  Alcotest.(check int) "both remain" 2 (trace_count ~weaker:true src)

let test_call_blocks_elimination () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void poke() { }
      static void main() {
        A a = new A();
        a.f = 1;
        poke();           // call between: start()/join() could hide here
        a.f = 2;          // must NOT be eliminated
        print("x", a.f);
      }
    }
  |}
  in
  (* a.f=2 survives (call between), the final read is covered by it. *)
  Alcotest.(check int) "call is a barrier" 2 (trace_count ~weaker:true src)

let test_sync_nesting_outer () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void main() {
        A a = new A();
        Object l = new Object();
        a.f = 1;                          // outside
        synchronized (l) { a.f = 2; }     // deeper: eliminated (outer holds)
        print("x", 0);
      }
    }
  |}
  in
  Alcotest.(check int) "deeper nesting eliminated" 1 (trace_count ~weaker:true src)

let test_sync_nesting_inner_not_covering () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void main() {
        A a = new A();
        Object l = new Object();
        synchronized (l) { a.f = 1; }     // inside
        a.f = 2;                          // outside: NOT covered
        print("x", 0);
      }
    }
  |}
  in
  (* Besides outer(), the monitorexit between them is a barrier. *)
  Alcotest.(check int) "shallower access survives" 2 (trace_count ~weaker:true src)

let test_different_objects_not_merged () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void main() {
        A a = new A();
        A b = new A();
        a.f = 1;
        b.f = 2;          // different value number: survives
        print("x", 0);
      }
    }
  |}
  in
  Alcotest.(check int) "distinct objects" 2 (trace_count ~weaker:true src)

let loop_src =
  {|
  class A { int f; }
  class Main {
    static void main() {
      A a = new A();
      for (int i = 0; i < 100; i = i + 1) {
        a.f = i;          // loop-invariant location
      }
      print("f", a.f);
    }
  }
|}

let test_loop_peeling_dynamic_events () =
  (* Without peeling the loop-body trace fires every iteration; after
     peeling + elimination it fires once (Figure 3's claim). *)
  let no_opt = events loop_src in
  let elim_only = events ~weaker:true loop_src in
  let peeled = events ~peel:true ~weaker:true loop_src in
  Alcotest.(check bool)
    (Printf.sprintf "no-opt has ~100 events (%d)" no_opt)
    true (no_opt >= 100);
  Alcotest.(check bool)
    (Printf.sprintf "elimination alone cannot help the loop (%d)" elim_only)
    true
    (elim_only >= 100);
  Alcotest.(check bool)
    (Printf.sprintf "peeling + elimination leaves O(1) events (%d)" peeled)
    true (peeled < 10)

let test_loop_peeling_preserves_semantics () =
  let plain = Pipe.run loop_src in
  let peeled = Pipe.run ~peel:true ~weaker:true loop_src in
  Alcotest.(check (list (pair string int))) "same output"
    (Pipe.ints plain.Pipe.prints) (Pipe.ints peeled.Pipe.prints)

(* Nested loops: sor2-style row processing with hoisted subscripts. *)
let nested_loop_src =
  {|
  class Main {
    static void main() {
      int[][] m = new int[20][30];
      for (int i = 1; i < 19; i = i + 1) {
        int[] prev = m[i - 1];
        int[] row = m[i];
        for (int j = 1; j < 29; j = j + 1) {
          row[j] = row[j] + prev[j];
        }
      }
      print("v", m[10][10]);
    }
  }
|}

let test_nested_loop_peeling () =
  let no_opt = events nested_loop_src in
  let peeled = events ~peel:true ~weaker:true nested_loop_src in
  (* Inner loop runs 18*28 ≈ 504 iterations with 3 array accesses each;
     after peeling, inner-loop traces collapse to one per outer
     iteration. *)
  Alcotest.(check bool)
    (Printf.sprintf "unoptimized floods events (%d)" no_opt)
    true (no_opt > 1000);
  Alcotest.(check bool)
    (Printf.sprintf "peeled is ~linear in outer loop (%d)" peeled)
    true
    (peeled < 300);
  (* Semantics preserved. *)
  let a = Pipe.run nested_loop_src and b = Pipe.run ~peel:true ~weaker:true nested_loop_src in
  Alcotest.(check (list (pair string int))) "same result" (Pipe.ints a.Pipe.prints) (Pipe.ints b.Pipe.prints)

let test_break_prevents_peeling_but_stays_correct () =
  let src =
    {|
    class A { int f; }
    class Main {
      static void main() {
        A a = new A();
        int i = 0;
        while (true) {
          a.f = i;
          i = i + 1;
          if (i == 5) { break; }
        }
        print("i", i);
        print("f", a.f);
      }
    }
  |}
  in
  let plain = Pipe.run src in
  let peeled = Pipe.run ~peel:true ~weaker:true src in
  Alcotest.(check (list (pair string int))) "identical output"
    (Pipe.ints plain.Pipe.prints) (Pipe.ints peeled.Pipe.prints)

(* The paper's Section 7.2/8 verification: optimizations do not change
   which races are reported, on a representative multithreaded program. *)
let racy_threads_src =
  {|
  class Shared { int hot; int cold; }
  class W extends Thread {
    Shared s; int n;
    void run() {
      for (int i = 0; i < n; i = i + 1) {
        s.hot = s.hot + 1;            // unsynchronized: race
      }
      synchronized (s) { s.cold = s.cold + 1; }  // synchronized: no race
    }
  }
  class Main {
    static void main() {
      Shared s = new Shared();
      W a = new W(); a.s = s; a.n = 40;
      W b = new W(); b.s = s; b.n = 40;
      a.start(); b.start();
      a.join(); b.join();
      print("hot", s.hot);
    }
  }
|}

let test_optimizations_preserve_reports () =
  List.iter
    (fun seed ->
      let base = Pipe.run ~seed racy_threads_src in
      let opt = Pipe.run ~seed ~peel:true ~weaker:true racy_threads_src in
      Alcotest.(check (list string)) "same racy locations"
        base.Pipe.race_locs opt.Pipe.race_locs;
      Alcotest.(check bool) "found the hot race" true
        (List.exists
           (fun l -> Astring_contains.contains l ".hot")
           base.Pipe.race_locs);
      Alcotest.(check bool) "cold is quiet" true
        (not
           (List.exists
              (fun l -> Astring_contains.contains l ".cold")
              base.Pipe.race_locs)))
    [ 3; 42; 777 ]

let test_eliminated_count_reported () =
  let _, removed =
    compile_instrumented ~weaker:true
      {|
      class A { int f; }
      class Main {
        static void main() {
          A a = new A();
          a.f = 1; a.f = 2; a.f = 3; a.f = 4;
          print("x", a.f);
        }
      }
    |}
  in
  (* 5 traces (4 writes + 1 read), the first write covers the rest. *)
  Alcotest.(check int) "4 eliminated" 4 removed

let suite =
  [
    Alcotest.test_case "insertion counts" `Quick test_insertion_counts;
    Alcotest.test_case "straight-line elimination" `Quick test_straightline_elimination;
    Alcotest.test_case "read does not cover write" `Quick test_read_does_not_cover_write;
    Alcotest.test_case "call blocks elimination" `Quick test_call_blocks_elimination;
    Alcotest.test_case "outer() allows deeper" `Quick test_sync_nesting_outer;
    Alcotest.test_case "inner does not cover outer" `Quick test_sync_nesting_inner_not_covering;
    Alcotest.test_case "distinct objects kept" `Quick test_different_objects_not_merged;
    Alcotest.test_case "loop peeling events" `Quick test_loop_peeling_dynamic_events;
    Alcotest.test_case "peeling preserves semantics" `Quick test_loop_peeling_preserves_semantics;
    Alcotest.test_case "nested loop peeling" `Quick test_nested_loop_peeling;
    Alcotest.test_case "break disables peeling safely" `Quick test_break_prevents_peeling_but_stays_correct;
    Alcotest.test_case "optimizations preserve reports" `Quick test_optimizations_preserve_reports;
    Alcotest.test_case "elimination count" `Quick test_eliminated_count_reported;
  ]
