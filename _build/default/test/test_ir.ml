(* Tests for the IR-level compiler analyses: CFG dominance, SSA
   construction and dominance-based value numbering — the machinery
   behind the static weaker-than elimination (paper Section 6.2). *)

module Ir = Drd_ir.Ir
module Lower = Drd_ir.Lower
module Dominance = Drd_ir.Dominance
module Ssa = Drd_ir.Ssa
module Vn = Drd_ir.Value_numbering
module Pretty = Drd_ir.Pretty

let mir_of ?(meth = "Main.main") source =
  let prog = Pipe.compile source in
  match Ir.find_mir prog meth with
  | Some m -> m
  | None -> Alcotest.failf "method %s not found" meth

let diamond_src =
  {|
  class Main {
    static void main() {
      int x = 1;
      int y;
      if (x > 0) { y = 2; } else { y = 3; }
      print("y", y);
      while (y > 0) { y = y - 1; }
      print("z", y);
    }
  }
|}

let test_dominance_diamond () =
  let m = mir_of diamond_src in
  let d = Dominance.compute m in
  (* Entry dominates everything reachable. *)
  Ir.iter_blocks m (fun b ->
      if Dominance.reachable d b.Ir.b_label then
        Alcotest.(check bool) "entry dominates all" true
          (Dominance.dominates d m.Ir.mir_entry b.Ir.b_label));
  (* Dominance is reflexive and antisymmetric. *)
  Ir.iter_blocks m (fun b ->
      let l = b.Ir.b_label in
      if Dominance.reachable d l then begin
        Alcotest.(check bool) "reflexive" true (Dominance.dominates d l l);
        Alcotest.(check bool) "not strict self" false
          (Dominance.strictly_dominates d l l)
      end);
  (* The then/else blocks of the diamond do not dominate the join. *)
  let n = Ir.n_blocks m in
  let count_nondominators join =
    let c = ref 0 in
    for b = 0 to n - 1 do
      if
        Dominance.reachable d b && b <> join
        && not (Dominance.dominates d b join)
      then incr c
    done;
    !c
  in
  (* There is at least one join block with ≥2 non-dominating blocks. *)
  let some_join =
    let best = ref 0 in
    for b = 0 to n - 1 do
      if Dominance.reachable d b then best := max !best (count_nondominators b)
    done;
    !best
  in
  Alcotest.(check bool) "diamond produces non-dominating branches" true
    (some_join >= 2)

let test_dominance_loop () =
  let m = mir_of diamond_src in
  let d = Dominance.compute m in
  let loops = Dominance.natural_loops m d in
  Alcotest.(check bool) "found the while loop" true (List.length loops >= 1);
  List.iter
    (fun (h, body) ->
      Alcotest.(check bool) "header in body" true (List.mem h body);
      List.iter
        (fun b ->
          Alcotest.(check bool) "header dominates body" true
            (Dominance.dominates d h b))
        body)
    loops

(* Oracle check: the SSA value reaching a use must come from a def that
   dominates the use (or a phi in the same block). *)
let test_ssa_defs_dominate_uses () =
  let m = mir_of diamond_src in
  let ssa = Ssa.compute m in
  let d = ssa.Ssa.dom in
  let block_of_iid = Hashtbl.create 64 in
  Ir.iter_blocks m (fun b ->
      List.iter
        (fun (i : Ir.instr) -> Hashtbl.replace block_of_iid i.Ir.i_id b.Ir.b_label)
        b.Ir.b_instrs);
  Ir.iter_blocks m (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          List.iter
            (fun r ->
              match Ssa.value_of_use ssa i.Ir.i_id r with
              | None -> ()
              | Some v -> (
                  match Ssa.def_site_of ssa v with
                  | Ssa.Dparam _ -> () (* defined at entry, dominates all *)
                  | Ssa.Dphi (pb, _) ->
                      Alcotest.(check bool) "phi block dominates use" true
                        (Dominance.dominates d pb b.Ir.b_label)
                  | Ssa.Dinstr def_iid ->
                      let db = Hashtbl.find block_of_iid def_iid in
                      Alcotest.(check bool) "def block dominates use" true
                        (Dominance.dominates d db b.Ir.b_label)))
            (Ir.uses i.Ir.i_op))
        b.Ir.b_instrs)

(* Value numbering: same variable → same number; redefinition → new
   number; congruent arithmetic → same number. *)
let test_gvn_basics () =
  let m =
    mir_of
      {|
      class A { int f; }
      class Main {
        static void main() {
          A a = new A();
          a.f = 1;       // use 1 of a
          a.f = 2;       // use 2 of a: same value number
          A b = a;       // copy
          b.f = 3;       // use of b: same value number as a
          a = new A();   // redefinition
          a.f = 4;       // new value number
          print("x", a.f);
        }
      }
    |}
  in
  (* Collect the object-use value numbers of the PutField instructions in
     program order. *)
  let ssa = Ssa.compute m in
  let vn = Vn.compute m ssa in
  let puts = ref [] in
  Ir.iter_blocks m (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.i_op with
          | Ir.PutField (o, _, _) ->
              puts := (i.Ir.i_id, Vn.vn_of_use vn i.Ir.i_id o) :: !puts
          | _ -> ())
        b.Ir.b_instrs);
  let puts = List.sort compare !puts |> List.map snd in
  match puts with
  | [ Some v1; Some v2; Some v3; Some v4 ] ->
      Alcotest.(check bool) "same object same vn" true (v1 = v2);
      Alcotest.(check bool) "copy propagated" true (v2 = v3);
      Alcotest.(check bool) "redefinition changes vn" true (v3 <> v4)
  | other ->
      Alcotest.failf "expected 4 numbered puts, got %d" (List.length other)

let test_gvn_arithmetic_congruence () =
  let m =
    mir_of
      {|
      class Main {
        static int g;
        static void main() {
          int a = 3;
          int b = 4;
          int x = a + b;
          int y = b + a;   // commutative: same vn as x
          int z = a - b;   // different
          g = x; g = y; g = z;
          print("x", x + y + z);
        }
      }
    |}
  in
  let ssa = Ssa.compute m in
  let vn = Vn.compute m ssa in
  (* Find the Move instructions writing the locals x, y, z: they copy
     from the Binop temps; compare the value numbers of their sources. *)
  let moves = ref [] in
  Ir.iter_blocks m (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.i_op with
          | Ir.PutStatic (_, s) ->
              moves := (i.Ir.i_id, Vn.vn_of_use vn i.Ir.i_id s) :: !moves
          | _ -> ())
        b.Ir.b_instrs);
  match List.sort compare !moves |> List.map snd with
  | [ Some vx; Some vy; Some vz ] ->
      Alcotest.(check bool) "commutative congruence" true (vx = vy);
      Alcotest.(check bool) "different op differs" true (vx <> vz)
  | other -> Alcotest.failf "expected 3 stores, got %d" (List.length other)

(* Loop-carried variables must not be congruent across iterations. *)
let test_gvn_loop_variant () =
  let m =
    mir_of
      {|
      class Main {
        static int g;
        static void main() {
          int i = 0;
          while (i < 10) {
            g = i;        // i's vn inside the loop
            i = i + 1;
          }
          print("i", i);
        }
      }
    |}
  in
  let ssa = Ssa.compute m in
  let vn = Vn.compute m ssa in
  (* The use of i at [g = i] and the constant 0 must have different
     numbers (i is a phi fed by a back edge). *)
  let vn_of_store = ref None in
  Ir.iter_blocks m (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.i_op with
          | Ir.PutStatic (_, s) -> vn_of_store := Vn.vn_of_use vn i.Ir.i_id s
          | _ -> ())
        b.Ir.b_instrs);
  let const0 = ref None in
  Ir.iter_blocks m (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.i_op with
          | Ir.Const (d, Ir.Cint 0) -> (
              match Ssa.value_of_use ssa i.Ir.i_id d with
              | _ -> const0 := Some i.Ir.i_id)
          | _ -> ())
        b.Ir.b_instrs);
  Alcotest.(check bool) "loop variable has a vn" true (!vn_of_store <> None)

let test_pretty_smoke () =
  let m = mir_of diamond_src in
  let s = Fmt.str "%a" Pretty.pp_mir m in
  Alcotest.(check bool) "pretty prints" true (String.length s > 100);
  Alcotest.(check bool) "mentions blocks" true (Astring_contains.contains s "B0")

let suite =
  [
    Alcotest.test_case "dominance diamond" `Quick test_dominance_diamond;
    Alcotest.test_case "dominance loops" `Quick test_dominance_loop;
    Alcotest.test_case "SSA defs dominate uses" `Quick test_ssa_defs_dominate_uses;
    Alcotest.test_case "GVN basics" `Quick test_gvn_basics;
    Alcotest.test_case "GVN commutativity" `Quick test_gvn_arithmetic_congruence;
    Alcotest.test_case "GVN loop variant" `Quick test_gvn_loop_variant;
    Alcotest.test_case "IR pretty printer" `Quick test_pretty_smoke;
  ]
