(* Differential testing of the whole pipeline: random multithreaded
   MiniJava programs are generated, compiled, fully instrumented and
   executed; the recorded event stream gives a ground-truth quadratic
   IsRace oracle, which is compared against the detector's reports.

   Checked properties (per random program):
   - completeness (Definition 1, ownership off): every truly racy
     location is reported, with and without the runtime cache;
   - the cache never adds reports;
   - the ownership model never adds reports over no-ownership. *)

module H = Drd_harness
open Drd_core

(* ---- random program specs ---- *)

type op = { sync : int option; field : int; write : bool }

type spec = {
  nfields : int;
  nlocks : int;
  inits : int list; (* fields main initializes before start *)
  threads : op list list; (* 2..3 workers *)
}

let gen_op ~nfields ~nlocks =
  QCheck.Gen.(
    map3
      (fun sync field write ->
        { sync = (if sync = 0 then None else Some (sync - 1)); field; write })
      (int_bound nlocks) (int_bound (nfields - 1)) bool)

let gen_spec =
  QCheck.Gen.(
    let* nfields = int_range 2 4 in
    let* nlocks = int_range 1 2 in
    let* nthreads = int_range 2 3 in
    let* threads =
      list_repeat nthreads (list_size (int_range 2 7) (gen_op ~nfields ~nlocks))
    in
    let* inits = list_size (int_bound (nfields - 1)) (int_bound (nfields - 1)) in
    return { nfields; nlocks; inits; threads })

let source_of_spec spec =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.bprintf b fmt in
  pf "class G {\n";
  for f = 0 to spec.nfields - 1 do
    pf "  static int f%d;\n" f
  done;
  for l = 0 to spec.nlocks - 1 do
    pf "  static Object l%d;\n" l
  done;
  pf "}\n";
  List.iteri
    (fun i ops ->
      pf "class W%d extends Thread {\n  void run() {\n    int t = 0;\n" i;
      List.iter
        (fun op ->
          let body =
            if op.write then
              Printf.sprintf "G.f%d = G.f%d + 1;" op.field op.field
            else Printf.sprintf "t = t + G.f%d;" op.field
          in
          match op.sync with
          | Some l -> pf "    synchronized (G.l%d) { %s }\n" l body
          | None -> pf "    %s\n" body)
        ops;
      pf "    print(\"t%d\", t);\n  }\n}\n" i)
    spec.threads;
  pf "class Main {\n  static void main() {\n";
  for l = 0 to spec.nlocks - 1 do
    pf "    G.l%d = new Object();\n" l
  done;
  List.iter (fun f -> pf "    G.f%d = %d;\n" f f) spec.inits;
  List.iteri (fun i _ -> pf "    W%d w%d = new W%d();\n" i i i) spec.threads;
  List.iteri (fun i _ -> pf "    w%d.start();\n" i) spec.threads;
  List.iteri (fun i _ -> pf "    w%d.join();\n" i) spec.threads;
  pf "    int total = 0;\n";
  for f = 0 to spec.nfields - 1 do
    pf "    total = total + G.f%d;\n" f
  done;
  pf "    print(\"total\", total);\n  }\n}\n";
  Buffer.contents b

let print_spec spec = source_of_spec spec

let arb_spec = QCheck.make ~print:print_spec gen_spec

(* ---- oracle and detector runs over the same recorded stream ---- *)

let oracle_racy_locs log =
  let events =
    List.filter_map
      (function Event_log.Access e -> Some e | _ -> None)
      (Event_log.entries log)
  in
  let events = Array.of_list events in
  let racy = Hashtbl.create 8 in
  Array.iteri
    (fun i ei ->
      Array.iteri
        (fun j ej ->
          if i < j && Event.is_race ei ej then
            Hashtbl.replace racy ei.Event.loc ())
        events)
    events;
  Hashtbl.fold (fun l () acc -> l :: acc) racy [] |> List.sort compare

let detector_racy_locs ~use_cache ~use_ownership log =
  let collector = Report.collector () in
  let det =
    Detector.create
      ~config:{ Detector.default_config with Detector.use_cache; use_ownership }
      collector
  in
  Event_log.replay log det;
  List.sort compare (Report.racy_locs collector)

let subset a b = List.for_all (fun x -> List.mem x b) a

let prop_pipeline_differential =
  QCheck.Test.make ~count:60 ~name:"pipeline vs quadratic oracle" arb_spec
    (fun spec ->
      let source = source_of_spec spec in
      (* Fully instrumented recording run (seed fixed by the config). *)
      let compiled =
        H.Pipeline.compile
          { H.Config.no_static with H.Config.weaker_elim = false; loop_peel = false }
          ~source
      in
      let log, _ = H.Pipeline.record_log compiled in
      let oracle = oracle_racy_locs log in
      let plain = detector_racy_locs ~use_cache:false ~use_ownership:false log in
      let cached = detector_racy_locs ~use_cache:true ~use_ownership:false log in
      let owned = detector_racy_locs ~use_cache:true ~use_ownership:true log in
      subset oracle plain && subset oracle cached && subset cached plain
      && subset owned plain)

(* End-to-end soundness of the optimizing pipeline itself: on random
   programs, the FULLY optimized configuration (static race set, static
   weaker-than elimination, loop peeling, caches — ownership off so the
   oracle applies) must still report every truly racy location.  Heap
   ids are deterministic across configurations for these programs (all
   allocation happens in main, in program order), so decoded location
   names are comparable. *)
let prop_optimized_pipeline_sound =
  QCheck.Test.make ~count:40 ~name:"optimized pipeline vs oracle" arb_spec
    (fun spec ->
      let source = source_of_spec spec in
      (* Ground truth from a fully instrumented recording. *)
      let recording =
        H.Pipeline.compile
          { H.Config.no_static with H.Config.weaker_elim = false; loop_peel = false }
          ~source
      in
      let log, rec_result = H.Pipeline.record_log recording in
      let describe =
        Drd_vm.Memloc.describe recording.H.Pipeline.prog.Drd_ir.Ir.p_tprog
          rec_result.Drd_vm.Interp.r_heap
      in
      let oracle = List.map describe (oracle_racy_locs log) in
      (* The optimized pipeline with ownership off. *)
      let _, opt = H.Pipeline.run_source H.Config.no_ownership source in
      let ok = subset oracle opt.H.Pipeline.races in
      if not ok then
        QCheck.Test.fail_reportf "oracle: %s@.optimized: %s"
          (String.concat ", " oracle)
          (String.concat ", " opt.H.Pipeline.races);
      true)

(* Deterministic spot checks derived from the same machinery. *)
let test_known_racy_spec () =
  let spec =
    {
      nfields = 2;
      nlocks = 1;
      inits = [ 0; 1 ];
      threads =
        [
          [ { sync = None; field = 0; write = true };
            { sync = Some 0; field = 1; write = true } ];
          [ { sync = None; field = 0; write = true };
            { sync = Some 0; field = 1; write = true } ];
        ];
    }
  in
  let source = source_of_spec spec in
  let _, r = H.Pipeline.run_source H.Config.full source in
  (* f0 races (unsynchronized writes by two threads), f1 does not. *)
  Alcotest.(check bool) "f0 flagged" true
    (List.exists (fun l -> Astring_contains.contains l "G.f0") r.H.Pipeline.races);
  Alcotest.(check bool) "f1 quiet" true
    (not (List.exists (fun l -> Astring_contains.contains l "G.f1") r.H.Pipeline.races))

let suite =
  [
    Alcotest.test_case "known racy spec" `Quick test_known_racy_spec;
    QCheck_alcotest.to_alcotest prop_pipeline_differential;
    QCheck_alcotest.to_alcotest prop_optimized_pipeline_sound;
  ]
