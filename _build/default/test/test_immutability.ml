(* Dynamic immutability analysis (the Section 10 future-work item):
   classifying locations as thread-local, shared-immutable
   (initialize-then-publish) or shared-mutable. *)

module Immutability = Drd_core.Immutability
module H = Drd_harness
open Drd_core

let ev ?(loc = 0) ?(thread = 0) ?(kind = Event.Read) () =
  Event.make ~loc ~thread ~locks:Event.Lockset.empty ~kind ~site:0

let test_state_machine () =
  let t = Immutability.create () in
  Alcotest.(check bool) "unknown" true (Immutability.classify t 0 = None);
  (* Owner initializes. *)
  Immutability.on_access t (ev ~thread:1 ~kind:Event.Write ());
  Immutability.on_access t (ev ~thread:1 ~kind:Event.Write ());
  Alcotest.(check bool) "local" true
    (Immutability.classify t 0 = Some Immutability.Thread_local);
  (* Published via reads only: immutable. *)
  Immutability.on_access t (ev ~thread:2 ~kind:Event.Read ());
  Immutability.on_access t (ev ~thread:1 ~kind:Event.Read ());
  Alcotest.(check bool) "shared-immutable" true
    (Immutability.classify t 0 = Some Immutability.Shared_immutable);
  (* Any later write degrades it. *)
  Immutability.on_access t (ev ~thread:1 ~kind:Event.Write ());
  Alcotest.(check bool) "shared-mutable" true
    (Immutability.classify t 0 = Some Immutability.Shared_mutable);
  Alcotest.(check (list int)) "mutable list" [ 0 ]
    (Immutability.shared_mutable_locs t)

let test_publication_write_is_mutable () =
  let t = Immutability.create () in
  Immutability.on_access t (ev ~thread:1 ~kind:Event.Write ());
  Immutability.on_access t (ev ~thread:2 ~kind:Event.Write ());
  Alcotest.(check bool) "write-publication is mutable" true
    (Immutability.classify t 0 = Some Immutability.Shared_mutable)

let test_summary_counts () =
  let t = Immutability.create () in
  Immutability.on_access t (ev ~loc:1 ~thread:1 ~kind:Event.Write ());
  Immutability.on_access t (ev ~loc:2 ~thread:1 ~kind:Event.Write ());
  Immutability.on_access t (ev ~loc:2 ~thread:2 ~kind:Event.Read ());
  Immutability.on_access t (ev ~loc:3 ~thread:1 ~kind:Event.Write ());
  Immutability.on_access t (ev ~loc:3 ~thread:2 ~kind:Event.Write ());
  let s = Immutability.summary t in
  Alcotest.(check int) "local" 1 s.Immutability.thread_local;
  Alcotest.(check int) "immutable" 1 s.Immutability.shared_immutable;
  Alcotest.(check int) "mutable" 1 s.Immutability.shared_mutable

let test_end_to_end_on_benchmark () =
  (* hedc: the MetaSearchRequest.query fields are the textbook
     initialize-then-publish pattern; pool/task state is mutable. *)
  let b = Option.get (H.Programs.find "hedc") in
  let _, r = H.Pipeline.run_source H.Config.full b.H.Programs.b_source in
  match r.H.Pipeline.immutability with
  | Some s ->
      Alcotest.(check bool) "some shared-immutable locations" true
        (s.Immutability.shared_immutable > 0);
      Alcotest.(check bool) "some shared-mutable locations" true
        (s.Immutability.shared_mutable > 0)
  | None -> Alcotest.fail "expected a summary"

let suite =
  [
    Alcotest.test_case "state machine" `Quick test_state_machine;
    Alcotest.test_case "publication write" `Quick test_publication_write_is_mutable;
    Alcotest.test_case "summary" `Quick test_summary_counts;
    Alcotest.test_case "hedc end to end" `Quick test_end_to_end_on_benchmark;
  ]
