(* Frontend tests: lexer, recursive-descent parser and typechecker —
   acceptance, shape, and rejection with meaningful errors. *)

module Lexer = Drd_lang.Lexer
module Token = Drd_lang.Token
module Parser = Drd_lang.Parser
module Typecheck = Drd_lang.Typecheck
module Ast = Drd_lang.Ast
module Tast = Drd_lang.Tast

(* ---- lexer ---- *)

let kinds src = List.map (fun (t : Token.t) -> t.Token.kind) (Lexer.tokenize src)

let test_lexer_tokens () =
  Alcotest.(check bool) "keywords and idents" true
    (kinds "class Foo extends Bar"
    = [ Token.KW_CLASS; Token.IDENT "Foo"; Token.KW_EXTENDS; Token.IDENT "Bar"; Token.EOF ]);
  Alcotest.(check bool) "operators" true
    (kinds "<= >= == != && || ! < >"
    = Token.[ LE; GE; EQ; NE; ANDAND; OROR; BANG; LT; GT; EOF ]);
  Alcotest.(check bool) "numbers" true
    (kinds "0 42 1103515245" = Token.[ INT 0; INT 42; INT 1103515245; EOF ]);
  Alcotest.(check bool) "strings" true
    (kinds {|"hello world"|} = Token.[ STRING "hello world"; EOF ])

let test_lexer_comments_positions () =
  let toks = Lexer.tokenize "x // line comment\n  /* block\n comment */ y" in
  (match toks with
  | [ { Token.kind = Token.IDENT "x"; pos = p1 };
      { Token.kind = Token.IDENT "y"; pos = p2 };
      { Token.kind = Token.EOF; _ } ] ->
      Alcotest.(check int) "x line" 1 p1.Ast.line;
      Alcotest.(check int) "y line" 3 p2.Ast.line
  | _ -> Alcotest.fail "unexpected tokens");
  Alcotest.check_raises "unterminated comment"
    (Lexer.Error ("unterminated comment", { Ast.line = 1; col = 1 }))
    (fun () -> ignore (Lexer.tokenize "/* never closed"));
  (match Lexer.tokenize "#" with
  | exception Lexer.Error (msg, _) ->
      Alcotest.(check bool) "bad char" true
        (Astring_contains.contains msg "unexpected character")
  | _ -> Alcotest.fail "expected lexer error")

(* ---- parser ---- *)

let parse_expr = Parser.parse_expr_string

let rec expr_to_string (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int n -> string_of_int n
  | Ast.Bool b -> string_of_bool b
  | Ast.Null -> "null"
  | Ast.This -> "this"
  | Ast.Ident x -> x
  | Ast.Field (r, f) -> Printf.sprintf "(%s.%s)" (expr_to_string r) f
  | Ast.Index (a, i) ->
      Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | Ast.Call (None, m, args) ->
      Printf.sprintf "%s(%s)" m (String.concat "," (List.map expr_to_string args))
  | Ast.Call (Some r, m, args) ->
      Printf.sprintf "(%s.%s)(%s)" (expr_to_string r) m
        (String.concat "," (List.map expr_to_string args))
  | Ast.New (c, args) ->
      Printf.sprintf "new %s(%s)" c (String.concat "," (List.map expr_to_string args))
  | Ast.NewArray (ty, dims) ->
      Printf.sprintf "new %s%s"
        (Fmt.to_to_string Ast.pp_ty ty)
        (String.concat "" (List.map (fun d -> "[" ^ expr_to_string d ^ "]") dims))
  | Ast.Binop (op, l, r) ->
      let s =
        match op with
        | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
        | Ast.Mod -> "%" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">"
        | Ast.Ge -> ">=" | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.And -> "&&"
        | Ast.Or -> "||"
      in
      Printf.sprintf "(%s%s%s)" (expr_to_string l) s (expr_to_string r)
  | Ast.Unop (Ast.Neg, e) -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Ast.Unop (Ast.Not, e) -> Printf.sprintf "(!%s)" (expr_to_string e)

let check_parse msg src expected =
  Alcotest.(check string) msg expected (expr_to_string (parse_expr src))

let test_parser_precedence () =
  check_parse "mul before add" "1 + 2 * 3" "(1+(2*3))";
  check_parse "left assoc sub" "10 - 3 - 2" "((10-3)-2)";
  check_parse "left assoc div" "100 / 5 / 2" "((100/5)/2)";
  check_parse "cmp before and" "a < b && c > d" "((a<b)&&(c>d))";
  check_parse "and before or" "a && b || c && d" "((a&&b)||(c&&d))";
  check_parse "eq after rel" "a < b == c < d" "((a<b)==(c<d))";
  check_parse "unary tight" "-a * b" "((-a)*b)";
  check_parse "not" "!a && b" "((!a)&&b)";
  check_parse "parens" "(1 + 2) * 3" "((1+2)*3)"

let test_parser_postfix () =
  check_parse "field chain" "a.b.c" "((a.b).c)";
  check_parse "index chain" "m[i][j]" "m[i][j]";
  check_parse "call on field" "a.b.f(1, 2)" "((a.b).f)(1,2)";
  check_parse "mixed" "a[i].f(x).g" "((a[i].f)(x).g)";
  check_parse "new with args" "new Foo(1, x)" "new Foo(1,x)";
  check_parse "new array 2d" "new int[3][4]" "new int[3][4]";
  check_parse "length" "a.length" "(a.length)"

let test_parser_statements () =
  let prog =
    Parser.parse_program
      {|
      class C {
        int f;
        static boolean flag;
        C(int x) { f = x; }
        synchronized int get() { return f; }
        void stuff(int n) {
          int[] a = new int[n];
          for (int i = 0; i < n; i = i + 1) {
            if (i % 2 == 0) { continue; }
            if (i > 50) { break; }
            a[i] = i;
          }
          while (n > 0) { n = n - 1; }
          synchronized (this) { f = f + 1; }
          print("done", n);
        }
      }
    |}
  in
  match prog with
  | [ c ] ->
      Alcotest.(check string) "class name" "C" c.Ast.c_name;
      Alcotest.(check int) "fields" 2 (List.length c.Ast.c_fields);
      Alcotest.(check int) "methods" 2 (List.length c.Ast.c_methods);
      Alcotest.(check int) "ctors" 1 (List.length c.Ast.c_ctors);
      let get = List.find (fun m -> m.Ast.m_name = "get") c.Ast.c_methods in
      Alcotest.(check bool) "synchronized" true get.Ast.m_sync;
      let flag = List.find (fun f -> f.Ast.f_name = "flag") c.Ast.c_fields in
      Alcotest.(check bool) "static field" true flag.Ast.f_static
  | _ -> Alcotest.fail "expected one class"

let expect_parse_error msg src =
  match Parser.parse_program src with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected a parse error")

let test_parser_errors () =
  expect_parse_error "missing brace" "class C { void m() { }";
  expect_parse_error "missing semicolon" "class C { void m() { int x = 1 } }";
  expect_parse_error "bad assignment target" "class C { void m() { 1 = 2; } }";
  expect_parse_error "expression statement" "class C { void m() { x + 1; } }";
  expect_parse_error "stray token" "class C { void m() { } } }";
  expect_parse_error "array without size" "class C { void m() { int[] a = new int[]; } }"

(* ---- typechecker ---- *)

let check_ok src = ignore (Typecheck.check (Parser.parse_program src))

let expect_type_error msg pat src =
  match Typecheck.check (Parser.parse_program src) with
  | exception Typecheck.Error (m, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" msg m pat)
        true
        (Astring_contains.contains m pat)
  | _ -> Alcotest.fail (msg ^ ": expected a type error")

let test_typecheck_accepts () =
  check_ok
    {|
    class A { int f; A next; int get() { return f; } }
    class B extends A { int get() { return f * 2; } }
    class Main {
      static void main() {
        A a = new B();
        a.next = a;
        boolean b = a == a.next && a.get() > 0 || a.next == null;
        if (b) { print("ok", 1); }
      }
    }
  |}

let test_typecheck_rejections () =
  expect_type_error "unknown variable" "unknown variable"
    "class Main { static void main() { x = 1; } }";
  expect_type_error "unknown class" "unknown class"
    "class Main { static void main() { Foo f = null; } }";
  expect_type_error "unknown method" "unknown method"
    "class Main { static void main() { frob(); } }";
  expect_type_error "unknown field" "unknown field"
    "class A { } class Main { static void main() { A a = new A(); print(\"\", a.f); } }";
  expect_type_error "arity" "expects 1 argument"
    "class A { void m(int x) { } } class Main { static void main() { A a = new A(); a.m(); } }";
  expect_type_error "arg type" "argument of type"
    "class A { void m(int x) { } } class Main { static void main() { A a = new A(); a.m(true); } }";
  expect_type_error "assign mismatch" "cannot assign"
    "class Main { static void main() { int x; x = true; } }";
  expect_type_error "init mismatch" "cannot initialize"
    "class Main { static void main() { boolean b = 3; } }";
  expect_type_error "condition not bool" "condition must be boolean"
    "class Main { static void main() { if (1) { } } }";
  expect_type_error "this in static" "this used in a static method"
    "class Main { static void main() { print(\"\", this == null); } }";
  expect_type_error "return type" "returning"
    "class A { int m() { return true; } } class Main { static void main() { } }";
  expect_type_error "void value" "void method returns a value"
    "class A { void m() { return 3; } } class Main { static void main() { } }";
  expect_type_error "missing main" "no static void main"
    "class A { void m() { } }";
  expect_type_error "duplicate class" "duplicate class"
    "class A { } class A { } class Main { static void main() { } }";
  expect_type_error "duplicate method" "duplicate method"
    "class A { void m() { } void m() { } } class Main { static void main() { } }";
  expect_type_error "duplicate field" "duplicate field"
    "class A { int f; int f; } class Main { static void main() { } }";
  expect_type_error "field shadowing" "shadows"
    "class A { int f; } class B extends A { int f; } class Main { static void main() { } }";
  expect_type_error "override signature" "different signature"
    "class A { int m() { return 1; } } class B extends A { boolean m() { return true; } } class Main { static void main() { } }";
  expect_type_error "cyclic inheritance" "extends itself"
    "class A extends A { } class Main { static void main() { } }";
  expect_type_error "sync on int" "synchronized requires an object"
    "class Main { static void main() { synchronized (3) { } } }";
  expect_type_error "break outside loop" "break outside"
    "class Main { static void main() { break; } }";
  expect_type_error "array index type" "array index must be int"
    "class Main { static void main() { int[] a = new int[3]; a[true] = 1; } }";
  expect_type_error "index non-array" "indexing a non-array"
    "class Main { static void main() { int x = 0; print(\"\", x[0]); } }";
  expect_type_error "incomparable" "incomparable types"
    "class Main { static void main() { boolean b = 1 == true; } }";
  expect_type_error "start on non-thread" "unknown method"
    "class A { } class Main { static void main() { A a = new A(); a.start(); } }";
  expect_type_error "multiple ctors" "multiple constructors"
    "class A { A() { } A(int x) { } } class Main { static void main() { } }";
  expect_type_error "double declaration" "already declared"
    "class Main { static void main() { int x = 1; int x = 2; } }"

let test_typecheck_resolution () =
  let tprog =
    Typecheck.check
      (Parser.parse_program
         {|
         class A { int f; void set(int v) { f = v; } }
         class B extends A { int g; }
         class Main { static void main() { B b = new B(); b.set(1); } }
       |})
  in
  let b = Option.get (Tast.find_class tprog "B") in
  Alcotest.(check int) "B has inherited + own fields" 2
    (Array.length b.Tast.cls_fields);
  Alcotest.(check bool) "f index 0" true
    (b.Tast.cls_fields.(0).Tast.fld_name = "f"
    && b.Tast.cls_fields.(0).Tast.fld_index = 0);
  Alcotest.(check bool) "g index 1" true
    (b.Tast.cls_fields.(1).Tast.fld_name = "g"
    && b.Tast.cls_fields.(1).Tast.fld_index = 1);
  Alcotest.(check bool) "B is not a thread" false b.Tast.cls_is_thread;
  (* dispatch of set on B resolves to A's implementation *)
  match Tast.dispatch tprog "B" "set" with
  | Some m -> Alcotest.(check string) "impl class" "A" m.Tast.tm_class
  | None -> Alcotest.fail "no dispatch"

let test_thread_subtyping () =
  let tprog =
    Typecheck.check
      (Parser.parse_program
         {|
         class W extends Thread { void run() { } }
         class V extends W { }
         class Main { static void main() { V v = new V(); v.start(); v.join(); } }
       |})
  in
  let v = Option.get (Tast.find_class tprog "V") in
  Alcotest.(check bool) "V is a thread" true v.Tast.cls_is_thread;
  match Tast.dispatch tprog "V" "run" with
  | Some m -> Alcotest.(check string) "run impl" "W" m.Tast.tm_class
  | None -> Alcotest.fail "no run dispatch"

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer comments/positions" `Quick test_lexer_comments_positions;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser postfix" `Quick test_parser_postfix;
    Alcotest.test_case "parser statements" `Quick test_parser_statements;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejections;
    Alcotest.test_case "resolution and layout" `Quick test_typecheck_resolution;
    Alcotest.test_case "thread subtyping" `Quick test_thread_subtyping;
  ]
