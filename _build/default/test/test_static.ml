(* Tests for the static datarace analysis (paper Section 5): points-to,
   single-instance must points-to, MustSync/MustThread, the
   thread-specific extension, and the resulting static race set —
   including the safety property that filtering instrumentation by the
   race set never changes which races are reported. *)

module Ir = Drd_ir.Ir
module Pointsto = Drd_static.Pointsto
module Must = Drd_static.Must
module Icg = Drd_static.Icg
module Thread_spec = Drd_static.Thread_spec
module Race_set = Drd_static.Race_set
module Insert = Drd_instr.Insert

let analyze source =
  let prog = Pipe.compile source in
  (prog, Race_set.compute prog)

(* Traces after static filtering vs. unfiltered. *)
let trace_counts source =
  let prog = Pipe.compile source in
  let rs = Race_set.compute prog in
  Insert.instrument ~keep:(Race_set.may_race rs) prog;
  let filtered = Insert.count_traces prog in
  let prog2 = Pipe.compile source in
  Insert.instrument prog2;
  (filtered, Insert.count_traces prog2)

let test_pointsto_basics () =
  let prog, rs = analyze
      {|
      class A { A next; }
      class Main {
        static A head;
        static A mk() { return new A(); }
        static void main() {
          A a = new A();
          A b = a;
          b.next = mk();
          head = a.next;
          print("ok", 1);
        }
      }
    |}
  in
  ignore prog;
  let pt = Race_set.pointsto rs in
  (* b aliases a; head points to what mk returns. *)
  let p v = Pointsto.pts pt v in
  let a = p (Pointsto.Vreg ("Main.main", 0)) in
  ignore a;
  (* Registers are not stable across lowering; instead check global
     facts: two abstract A objects exist and the static slot sees the
     mk() one. *)
  Alcotest.(check bool) "some objects" true (Pointsto.n_objs pt >= 2);
  let statics = p (Pointsto.Vstatic 0) in
  Alcotest.(check bool) "head points to one object" true
    (Pointsto.Iset.cardinal statics >= 1)

let test_callgraph_virtual_dispatch () =
  let _, rs = analyze
      {|
      class A { int go() { return 1; } }
      class B extends A { int go() { return 2; } }
      class Main {
        static void main() {
          A x = new B();
          print("r", x.go());
        }
      }
    |}
  in
  let pt = Race_set.pointsto rs in
  (* B.go must be reachable, A.go must not (receiver can only be B). *)
  Alcotest.(check bool) "B.go reachable" true (Pointsto.is_reachable pt "B.go");
  Alcotest.(check bool) "A.go not reachable" false
    (Pointsto.is_reachable pt "A.go")

let test_unreachable_methods_excluded () =
  let _, rs = analyze
      {|
      class A { int f; void dead() { f = 1; } }
      class Main {
        static void main() { A a = new A(); a.f = 2; print("x", a.f); }
      }
    |}
  in
  let pt = Race_set.pointsto rs in
  Alcotest.(check bool) "dead not reachable" false
    (Pointsto.is_reachable pt "A.dead");
  Alcotest.(check bool) "main reachable" true
    (Pointsto.is_reachable pt "Main.main")

let test_single_threaded_race_set_empty () =
  (* A purely sequential program: MustSameThread holds everywhere, so the
     static race set is empty and no instrumentation remains. *)
  let filtered, unfiltered =
    trace_counts
      {|
      class A { int f; }
      class Main {
        static void main() {
          A a = new A();
          for (int i = 0; i < 10; i = i + 1) { a.f = a.f + 1; }
          print("f", a.f);
        }
      }
    |}
  in
  Alcotest.(check bool) "unfiltered has traces" true (unfiltered > 0);
  Alcotest.(check int) "race set empty for sequential program" 0 filtered

let counter_src ~sync =
  Printf.sprintf
    {|
    class Counter {
      int n;
      %s void inc() { n = n + 1; }
    }
    class Worker extends Thread {
      Counter c; int iters;
      Worker(Counter c0, int k) { c = c0; iters = k; }
      void run() { for (int i = 0; i < iters; i = i + 1) { c.inc(); } }
    }
    class Main {
      static void main() {
        Counter c = new Counter();
        Worker w1 = new Worker(c, 50);
        Worker w2 = new Worker(c, 50);
        w1.start(); w2.start();
        w1.join(); w2.join();
        print("n", c.n);
      }
    }
  |}
    (if sync then "synchronized" else "")

let test_must_sync_protects_counter () =
  let _, rs = analyze (counter_src ~sync:true) in
  let s = Race_set.stats rs in
  (* The n accesses inside inc() are protected by the must-held lock on
     the single-instance Counter object, and the thread-specific fields
     (c, iters) are excluded.  What remains is exactly the pair
     {unsynchronized n read in main, synchronized n write in inc}: the
     static analysis conservatively ignores the ordering condition
     (paper footnote 5), so the post-join read stays — it is the
     dynamic join pseudo-locks that silence it. *)
  Alcotest.(check int)
    (Fmt.str "only the post-join pair remains (%d in set)"
       s.Race_set.in_race_set)
    2 s.Race_set.in_race_set

let test_unsync_counter_in_race_set () =
  let _, rs = analyze (counter_src ~sync:false) in
  let s = Race_set.stats rs in
  (* Both the read and the write of n in inc() may race. *)
  Alcotest.(check bool)
    (Fmt.str "n accesses in race set (%d)" s.Race_set.in_race_set)
    true
    (s.Race_set.in_race_set >= 2)

let test_thread_specific_fields () =
  let _, rs = analyze (counter_src ~sync:true) in
  let ts = Race_set.thread_spec rs in
  Alcotest.(check bool) "Worker ctor thread-specific" true
    (Thread_spec.is_specific_method ts "Worker.<init>");
  Alcotest.(check bool) "Worker.run thread-specific" true
    (Thread_spec.is_specific_method ts "Worker.run");
  Alcotest.(check bool) "Worker safe" false
    (Thread_spec.is_unsafe_class ts "Worker")

let test_unsafe_thread_escaping_this () =
  let _, rs = analyze
      {|
      class Registry { static Leaky last; }
      class Leaky extends Thread {
        int v;
        Leaky() { Registry.last = this; v = 1; }
        void run() { v = v + 1; }
      }
      class Main {
        static void main() {
          Leaky l = new Leaky();
          l.start();
          Registry.last.v = 5;
          l.join();
          print("v", l.v);
        }
      }
    |}
  in
  let ts = Race_set.thread_spec rs in
  Alcotest.(check bool) "Leaky is unsafe" true
    (Thread_spec.is_unsafe_class ts "Leaky");
  (* v may race: it must be in the race set. *)
  let s = Race_set.stats rs in
  Alcotest.(check bool) "v accesses kept" true (s.Race_set.in_race_set > 0)

let test_must_same_thread_two_distinct_runs () =
  (* Two different thread classes touching different data: each run's
     statements are single-threaded; no races. *)
  let _, rs = analyze
      {|
      class W1 extends Thread { int a; void run() { a = 1; } }
      class W2 extends Thread { int b; void run() { b = 2; } }
      class Main {
        static void main() {
          W1 x = new W1(); W2 y = new W2();
          x.start(); y.start(); x.join(); y.join();
          print("ok", 1);
        }
      }
    |}
  in
  let s = Race_set.stats rs in
  Alcotest.(check int) "disjoint threads, empty race set" 0
    s.Race_set.in_race_set

let test_same_run_two_instances_races () =
  (* The same run method started twice: MustThread is not a singleton,
     so its conflicting accesses stay in the race set. *)
  let _, rs = analyze
      {|
      class G { static int x; }
      class W extends Thread { void run() { G.x = G.x + 1; } }
      class Main {
        static void main() {
          W a = new W(); W b = new W();
          a.start(); b.start(); a.join(); b.join();
          print("x", G.x);
        }
      }
    |}
  in
  let s = Race_set.stats rs in
  Alcotest.(check bool) "static x accesses kept" true
    (s.Race_set.in_race_set >= 2)

(* Safety: static filtering must not lose any reported race. *)
let figure2_and_friends =
  [
    Test_vm.figure2 ~same_pq:false;
    Test_vm.figure2 ~same_pq:true;
    counter_src ~sync:false;
    counter_src ~sync:true;
  ]

let test_static_filtering_preserves_reports () =
  List.iter
    (fun src ->
      List.iter
        (fun seed ->
          let base = Pipe.run ~seed src in
          let filtered = Pipe.run ~seed ~static:true src in
          Alcotest.(check (list string)) "same racy locations"
            base.Pipe.race_locs filtered.Pipe.race_locs)
        [ 11; 42 ])
    figure2_and_friends

let test_static_reduces_instrumentation () =
  let filtered, unfiltered = trace_counts (counter_src ~sync:false) in
  Alcotest.(check bool)
    (Fmt.str "fewer traces (%d < %d)" filtered unfiltered)
    true
    (filtered < unfiltered);
  Alcotest.(check bool) "but not zero" true (filtered > 0)

let test_static_peers () =
  (* Section 2.6: a dynamic report's site links back to the static
     candidate statements it may race with. *)
  let compiled, r =
    Drd_harness.Pipeline.run_source Drd_harness.Config.full
      (counter_src ~sync:false)
  in
  match r.Drd_harness.Pipeline.report with
  | Some coll when Drd_core.Report.count coll > 0 ->
      let race = List.hd (Drd_core.Report.races coll) in
      let peers =
        Drd_harness.Pipeline.static_peers_of_site compiled
          race.Drd_core.Report.current.Drd_core.Event.site
      in
      Alcotest.(check bool)
        (Fmt.str "non-empty peers (%s)" (String.concat "; " peers))
        true (peers <> []);
      Alcotest.(check bool) "peers point into Counter.inc" true
        (List.exists
           (fun p -> Astring_contains.contains p "Counter.inc")
           peers)
  | _ -> Alcotest.fail "expected a race"

let test_stats_render () =
  let _, rs = analyze (counter_src ~sync:false) in
  let s = Fmt.str "%a" Race_set.pp_stats (Race_set.stats rs) in
  Alcotest.(check bool) "renders" true
    (Astring_contains.contains s "race set")

let suite =
  [
    Alcotest.test_case "points-to basics" `Quick test_pointsto_basics;
    Alcotest.test_case "virtual dispatch CG" `Quick test_callgraph_virtual_dispatch;
    Alcotest.test_case "unreachable excluded" `Quick test_unreachable_methods_excluded;
    Alcotest.test_case "sequential race set empty" `Quick test_single_threaded_race_set_empty;
    Alcotest.test_case "MustSync protects counter" `Quick test_must_sync_protects_counter;
    Alcotest.test_case "unsync counter kept" `Quick test_unsync_counter_in_race_set;
    Alcotest.test_case "thread-specific fields" `Quick test_thread_specific_fields;
    Alcotest.test_case "unsafe thread" `Quick test_unsafe_thread_escaping_this;
    Alcotest.test_case "distinct threads quiet" `Quick test_must_same_thread_two_distinct_runs;
    Alcotest.test_case "same run twice races" `Quick test_same_run_two_instances_races;
    Alcotest.test_case "filtering preserves reports" `Quick test_static_filtering_preserves_reports;
    Alcotest.test_case "filtering reduces traces" `Quick test_static_reduces_instrumentation;
    Alcotest.test_case "static peers (2.6)" `Quick test_static_peers;
    Alcotest.test_case "stats render" `Quick test_stats_render;
  ]
