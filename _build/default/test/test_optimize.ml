(* Tests for the classical IR optimizer (constant/copy propagation,
   folding, DCE): semantics preservation, and the paper's Section 6.2
   requirement that trace instructions survive the surrounding
   compiler's optimizations. *)

module Ir = Drd_ir.Ir
module Optimize = Drd_ir.Optimize
module Insert = Drd_instr.Insert
module H = Drd_harness

let test_constant_folding () =
  let prog =
    Pipe.compile
      {|
      class Main {
        static void main() {
          int a = 6;
          int b = 7;
          int c = a * b;
          print("c", c);
        }
      }
    |}
  in
  let removed = Optimize.optimize prog in
  Alcotest.(check bool) (Fmt.str "removed some (%d)" removed) true (removed > 0);
  (* The multiplication must be gone — folded into a constant. *)
  let muls = ref 0 in
  Ir.iter_mirs prog (fun m ->
      Ir.iter_instrs m (fun _ i ->
          match i.Ir.i_op with
          | Ir.Binop (Drd_lang.Ast.Mul, _, _, _) -> incr muls
          | _ -> ()));
  Alcotest.(check int) "multiplication folded away" 0 !muls

let test_branch_folding_removes_dead_branch () =
  let prog =
    Pipe.compile
      {|
      class Main {
        static void main() {
          if (1 < 2) { print("then", 1); } else { print("else", 0); }
        }
      }
    |}
  in
  ignore (Optimize.optimize prog);
  let prints = ref [] in
  Ir.iter_mirs prog (fun m ->
      Ir.iter_instrs m (fun _ i ->
          match i.Ir.i_op with
          | Ir.Print (tag, _) -> prints := tag :: !prints
          | _ -> ()));
  Alcotest.(check (list string)) "only the then-branch survives" [ "then" ]
    !prints

let test_effectful_division_kept () =
  let prog =
    Pipe.compile
      {|
      class Main {
        static int f(int d) {
          int dead = 100 / d;    // result unused, but d may be zero
          return 1;
        }
        static void main() { print("x", f(5)); }
      }
    |}
  in
  ignore (Optimize.optimize prog);
  let divs = ref 0 in
  Ir.iter_mirs prog (fun m ->
      Ir.iter_instrs m (fun _ i ->
          match i.Ir.i_op with
          | Ir.Binop (Drd_lang.Ast.Div, _, _, _) -> incr divs
          | _ -> ()));
  Alcotest.(check int) "trapping division kept" 1 !divs

let test_traces_survive_dce () =
  (* Section 6.2: "The remaining trace statements are marked as having
     an unknown side effect to ensure they are not eliminated as dead
     code."  Traces have no used result, so a naive DCE would delete
     all of them. *)
  let prog =
    Pipe.compile
      {|
      class A { int f; }
      class W extends Thread {
        A a;
        W(A a0) { a = a0; }
        void run() { a.f = a.f + 1; }
      }
      class Main {
        static void main() {
          A x = new A();
          W w1 = new W(x); W w2 = new W(x);
          w1.start(); w2.start(); w1.join(); w2.join();
          print("f", x.f);
        }
      }
    |}
  in
  Insert.instrument prog;
  let before = Insert.count_traces prog in
  ignore (Optimize.optimize prog);
  Alcotest.(check int) "traces survive optimization" before
    (Insert.count_traces prog);
  Alcotest.(check bool) "there were traces" true (before > 0)

let test_accesses_survive () =
  (* Memory accesses are the monitored events; even dead loads stay. *)
  let prog =
    Pipe.compile
      {|
      class A { int f; }
      class Main {
        static void main() {
          A a = new A();
          int dead = a.f;        // load with unused result
          print("ok", 1);
        }
      }
    |}
  in
  ignore (Optimize.optimize prog);
  let loads = ref 0 in
  Ir.iter_mirs prog (fun m ->
      Ir.iter_instrs m (fun _ i ->
          match i.Ir.i_op with Ir.GetField _ -> incr loads | _ -> ()));
  Alcotest.(check int) "load kept" 1 !loads

let test_semantics_preserved_on_benchmarks () =
  List.iter
    (fun (b : H.Programs.benchmark) ->
      let with_opt = H.Pipeline.run_source H.Config.full b.H.Programs.b_source in
      let without =
        H.Pipeline.run_source
          { H.Config.full with H.Config.ir_optimize = false }
          b.H.Programs.b_source
      in
      let ints r =
        List.filter_map
          (fun (t, v) ->
            (* hedc's "size" print is the value of a racy counter and is
               legitimately schedule-dependent. *)
            if t = "size" then None
            else
              Some
                (t, match v with Some (Drd_vm.Value.Vint n) -> n | _ -> min_int))
          (snd r).H.Pipeline.prints
      in
      Alcotest.(check (list (pair string int)))
        (b.H.Programs.b_name ^ ": same output")
        (ints without) (ints with_opt);
      (* Spin/yield loops make step counts schedule-sensitive for the
         interactive benchmarks; check monotonicity on the CPU-bound
         ones only. *)
      if b.H.Programs.b_cpu_bound then
        Alcotest.(check bool)
          (Fmt.str "%s: optimizer reduces steps (%d <= %d)" b.H.Programs.b_name
             (snd with_opt).H.Pipeline.steps (snd without).H.Pipeline.steps)
          true
          ((snd with_opt).H.Pipeline.steps <= (snd without).H.Pipeline.steps))
    H.Programs.benchmarks

let test_races_unchanged () =
  (* Exact equality on the schedule-stable benchmarks; on tsp/hedc the
     set of protocol-victim objects is schedule-sensitive, so check the
     headline races instead. *)
  List.iter
    (fun name ->
      let b = Option.get (H.Programs.find name) in
      let w = snd (H.Pipeline.run_source H.Config.full b.H.Programs.b_source) in
      let wo =
        snd
          (H.Pipeline.run_source
             { H.Config.full with H.Config.ir_optimize = false }
             b.H.Programs.b_source)
      in
      Alcotest.(check (list string))
        (name ^ ": same racy objects")
        wo.H.Pipeline.racy_objects w.H.Pipeline.racy_objects)
    [ "mtrt"; "sor2"; "elevator" ];
  let has sub r =
    List.exists
      (fun o -> Astring_contains.contains o sub)
      r.H.Pipeline.racy_objects
  in
  List.iter
    (fun (name, key) ->
      let b = Option.get (H.Programs.find name) in
      let wo =
        snd
          (H.Pipeline.run_source
             { H.Config.full with H.Config.ir_optimize = false }
             b.H.Programs.b_source)
      in
      Alcotest.(check bool)
        (name ^ ": headline race still found without optimizer")
        true (has key wo))
    [ ("tsp", "MinTourLen"); ("hedc", "Pool") ]

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "branch folding" `Quick test_branch_folding_removes_dead_branch;
    Alcotest.test_case "trapping division kept" `Quick test_effectful_division_kept;
    Alcotest.test_case "traces survive DCE (6.2)" `Quick test_traces_survive_dce;
    Alcotest.test_case "accesses survive" `Quick test_accesses_survive;
    Alcotest.test_case "benchmark semantics preserved" `Quick
      test_semantics_preserved_on_benchmarks;
    Alcotest.test_case "races unchanged" `Quick test_races_unchanged;
  ]
