(* Standalone delta-debugger for the cache+ownership transparency
   counterexample.  Not part of the test suite. *)

open Drd_core

type op = Acq of int | Rel of int | Acc of int * Event.kind

let parse s =
  String.split_on_char ';' s
  |> List.map (fun tok ->
         Scanf.sscanf tok "T%d:%s" (fun t rest ->
             let n () = int_of_string (String.sub rest 1 (String.length rest - 1)) in
             match rest.[0] with
             | 'a' ->
                 (* acqNNN *)
                 (t, Acq (int_of_string (String.sub rest 3 (String.length rest - 3))))
             | 'r' ->
                 (t, Rel (int_of_string (String.sub rest 3 (String.length rest - 3))))
             | 'R' -> (t, Acc (n (), Event.Read))
             | 'W' -> (t, Acc (n (), Event.Write))
             | c -> failwith (Printf.sprintf "bad op %c" c)))

(* Keep a schedule valid after deletion: drop releases whose acquire is
   gone and acquires whose release is gone is not needed (unbalanced is
   tolerated as long as LIFO holds); simplest: filter to keep LIFO. *)
let valid sched =
  let held = Hashtbl.create 8 in
  List.for_all
    (fun (t, op) ->
      let stack = Option.value (Hashtbl.find_opt held t) ~default:[] in
      match op with
      | Acq l ->
          Hashtbl.replace held t (l :: stack);
          true
      | Rel l -> (
          match stack with
          | l' :: rest when l' = l ->
              Hashtbl.replace held t rest;
              true
          | _ -> false)
      | Acc _ -> true)
    sched

let run_schedule config sched =
  let coll = Report.collector () in
  let d = Detector.create ~config coll in
  let held = Hashtbl.create 8 in
  let locks_of t = Option.value (Hashtbl.find_opt held t) ~default:[] in
  List.iter
    (fun (t, op) ->
      match op with
      | Acq l ->
          Hashtbl.replace held t (l :: locks_of t);
          Detector.on_acquire d ~thread:t ~lock:l
      | Rel l ->
          (match locks_of t with
          | l' :: rest when l' = l -> Hashtbl.replace held t rest
          | _ -> failwith "non-LIFO");
          Detector.on_release d ~thread:t ~lock:l
      | Acc (loc, kind) ->
          Detector.on_access d
            (Event.make ~loc ~thread:t
               ~locks:(Event.Lockset.of_list (locks_of t))
               ~kind ~site:0))
    sched;
  List.sort compare (Report.racy_locs coll)

let differs sched =
  let base =
    { Detector.default_config with Detector.use_cache = false; use_ownership = true }
  in
  valid sched
  && run_schedule base sched
     <> run_schedule { base with Detector.use_cache = true } sched

let minimize sched =
  let cur = ref sched in
  let improved = ref true in
  while !improved do
    improved := false;
    let n = List.length !cur in
    (* try removing each element *)
    let rec try_remove i =
      if i < n then begin
        let cand = List.filteri (fun j _ -> j <> i) !cur in
        if differs cand then begin
          cur := cand;
          improved := true
        end
        else try_remove (i + 1)
      end
    in
    try_remove 0
  done;
  !cur

let pp_op (t, op) =
  match op with
  | Acq l -> Printf.sprintf "T%d:acq%d" t l
  | Rel l -> Printf.sprintf "T%d:rel%d" t l
  | Acc (m, Event.Read) -> Printf.sprintf "T%d:R%d" t m
  | Acc (m, Event.Write) -> Printf.sprintf "T%d:W%d" t m

let () =
  let sched = parse (input_line stdin) in
  Printf.printf "input differs: %b\n%!" (differs sched);
  if differs sched then begin
    let m = minimize sched in
    Printf.printf "minimized (%d ops): %s\n" (List.length m)
      (String.concat ";" (List.map pp_op m));
    let base =
      { Detector.default_config with Detector.use_cache = false; use_ownership = true }
    in
    Printf.printf "no-cache: %s\n"
      (String.concat "," (List.map string_of_int (run_schedule base m)));
    Printf.printf "cache:    %s\n"
      (String.concat ","
         (List.map string_of_int
            (run_schedule { base with Detector.use_cache = true } m)))
  end
