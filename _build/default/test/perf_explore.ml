(* Scratch driver: Table 2 shape at performance sizes.  Not part of the
   test suite. *)

module H = Drd_harness

let () =
  List.iter
    (fun (b : H.Programs.benchmark) ->
      if b.H.Programs.b_cpu_bound then begin
        Printf.printf "=== %s ===\n%!" b.H.Programs.b_name;
        let base_time = ref 1.0 in
        List.iter
          (fun config ->
            let c = H.Pipeline.compile config ~source:b.H.Programs.b_perf_source in
            (* best of 3 runs, like the paper's best-of-5 *)
            let best = ref infinity in
            let last = ref None in
            for _ = 1 to 3 do
              let r = H.Pipeline.run c in
              if r.H.Pipeline.wall_time < !best then best := r.H.Pipeline.wall_time;
              last := Some r
            done;
            let r = Option.get !last in
            if config.H.Config.name = "Base" then base_time := !best;
            Printf.printf
              "  %-13s %6.3fs (%+5.0f%%)  events=%9d steps=%9d races=%d\n%!"
              config.H.Config.name !best
              ((!best /. !base_time -. 1.0) *. 100.)
              r.H.Pipeline.events r.H.Pipeline.steps
              (List.length r.H.Pipeline.racy_objects))
          H.Config.table2_configs
      end)
    H.Programs.benchmarks
