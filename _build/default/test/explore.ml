(* Scratch driver: run the benchmark suite under the Table 2/3
   configurations and dump what comes out.  Not part of the test suite. *)

module H = Drd_harness

let () =
  let configs =
    [
      H.Config.base;
      H.Config.full;
      H.Config.no_static;
      H.Config.no_dominators;
      H.Config.no_peeling;
      H.Config.no_cache;
      H.Config.fields_merged;
      H.Config.no_ownership;
      H.Config.eraser;
      H.Config.objrace;
      H.Config.happens_before;
    ]
  in
  List.iter
    (fun (b : H.Programs.benchmark) ->
      Printf.printf "=== %s (loc %d) ===\n%!" b.H.Programs.b_name
        (H.Programs.loc_of_source b.H.Programs.b_source);
      List.iter
        (fun config ->
          try
            let c, r = H.Pipeline.run_source config b.H.Programs.b_source in
            Printf.printf
              "  %-13s races(objs)=%2d events=%8d steps=%8d wall=%6.3fs traces=%d(-%d) prints=%s\n%!"
              config.H.Config.name
              (List.length r.H.Pipeline.racy_objects)
              r.H.Pipeline.events r.H.Pipeline.steps r.H.Pipeline.wall_time
              c.H.Pipeline.traces_inserted c.H.Pipeline.traces_eliminated
              (String.concat ","
                 (List.map
                    (fun (t, v) ->
                      Printf.sprintf "%s=%s" t
                        (match v with
                        | Some (Drd_vm.Value.Vint n) -> string_of_int n
                        | Some (Drd_vm.Value.Vbool b) -> string_of_bool b
                        | _ -> "?"))
                    r.H.Pipeline.prints));
            if config.H.Config.name = "Full" then
              List.iter
                (fun o -> Printf.printf "      racy: %s\n" o)
                r.H.Pipeline.racy_objects
          with e ->
            Printf.printf "  %-13s EXCEPTION %s\n%!" config.H.Config.name
              (Printexc.to_string e))
        configs)
    H.Programs.benchmarks
