(* Tests for the harness itself: configuration lookup, pipeline
   bookkeeping, and the table-regeneration API the benches rely on. *)

module H = Drd_harness
module Config = H.Config
module Pipeline = H.Pipeline
module Tables = H.Tables

let test_config_lookup () =
  Alcotest.(check bool) "full" true (Config.by_name "Full" <> None);
  Alcotest.(check bool) "case-insensitive" true
    (Config.by_name "noownership" <> None);
  Alcotest.(check bool) "unknown" true (Config.by_name "bogus" = None);
  Alcotest.(check int) "table2 columns" 6 (List.length Config.table2_configs);
  Alcotest.(check int) "table3 columns" 3 (List.length Config.table3_configs);
  (* Names are unique. *)
  let names = List.map (fun (c : Config.t) -> c.Config.name) Config.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_compile_bookkeeping () =
  let b = Option.get (H.Programs.find "sor2") in
  let full = Pipeline.compile Config.full ~source:b.H.Programs.b_source in
  Alcotest.(check bool) "static stats present" true
    (full.Pipeline.static_stats <> None);
  Alcotest.(check bool) "race set kept" true (full.Pipeline.race_set <> None);
  Alcotest.(check bool) "traces inserted" true (full.Pipeline.traces_inserted > 0);
  Alcotest.(check bool) "traces eliminated" true
    (full.Pipeline.traces_eliminated > 0);
  let base = Pipeline.compile Config.base ~source:b.H.Programs.b_source in
  Alcotest.(check int) "base uninstrumented" 0 base.Pipeline.traces_inserted;
  Alcotest.(check bool) "base has no race set" true
    (base.Pipeline.race_set = None)

let test_base_emits_no_events () =
  let b = Option.get (H.Programs.find "tsp") in
  let _, r = Pipeline.run_source Config.base b.H.Programs.b_source in
  Alcotest.(check int) "no events" 0 r.Pipeline.events;
  Alcotest.(check (list string)) "no races" [] r.Pipeline.races

(* Redirect stdout while regenerating tables (they print). *)
let quietly f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close devnull
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let test_table3_rows () =
  let rows = quietly (fun () -> Tables.table3 ()) in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun (name, cells) ->
      Alcotest.(check int) (name ^ ": three cells") 3 (List.length cells);
      (* Full <= NoOwnership on every benchmark. *)
      Alcotest.(check bool) (name ^ ": ownership monotone") true
        (List.nth cells 0 <= List.nth cells 2))
    rows;
  let full_of n rows = List.nth (List.assoc n rows) 0 in
  Alcotest.(check int) "mtrt Full = 2" 2 (full_of "mtrt" rows);
  Alcotest.(check int) "elevator Full = 0" 0 (full_of "elevator" rows);
  Alcotest.(check int) "hedc Full = 5" 5 (full_of "hedc" rows)

let test_baselines_rows () =
  let rows = quietly (fun () -> Tables.baselines ()) in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  (* Object race detection flags the race-free elevator; we do not. *)
  let elevator = List.assoc "elevator" rows in
  Alcotest.(check int) "ours 0" 0 (List.nth elevator 0);
  Alcotest.(check bool) "objrace > 0" true (List.nth elevator 2 > 0)

let test_table2_quick () =
  let rows = quietly (fun () -> Tables.table2 ~runs:1 ~perf:false ()) in
  (* Three CPU-bound rows, six cells each; Base has zero events and
     every other configuration has more. *)
  Alcotest.(check int) "three rows" 3 (List.length rows);
  List.iter
    (fun (name, cells) ->
      Alcotest.(check int) (name ^ ": six cells") 6 (List.length cells);
      let base = List.nth cells 0 in
      Alcotest.(check int) (name ^ ": base events") 0 base.Tables.events;
      List.iteri
        (fun i c ->
          if i > 0 then
            Alcotest.(check bool)
              (Fmt.str "%s cell %d has events" name i)
              true (c.Tables.events > 0))
        cells)
    rows

let test_space () =
  let nodes, locs = quietly (fun () -> Tables.space ()) in
  Alcotest.(check bool) "nodes >= locs" true (nodes >= locs);
  Alcotest.(check bool) "tracks many locations" true (locs > 20)

let suite =
  [
    Alcotest.test_case "config lookup" `Quick test_config_lookup;
    Alcotest.test_case "compile bookkeeping" `Quick test_compile_bookkeeping;
    Alcotest.test_case "base emits nothing" `Quick test_base_emits_no_events;
    Alcotest.test_case "table 3 rows" `Quick test_table3_rows;
    Alcotest.test_case "baselines rows" `Quick test_baselines_rows;
    Alcotest.test_case "table 2 quick" `Quick test_table2_quick;
    Alcotest.test_case "space" `Quick test_space;
  ]
