(* Tests for wait/notify/notifyAll: the monitor-style condition
   synchronization the paper's benchmark applications (hedc's thread
   pool, elevator) rely on in their original Java form.  Covers the VM
   semantics, the detector across wait boundaries (the monitor is fully
   released), and lost-notify deadlock diagnosis. *)

module Interp = Drd_vm.Interp

let check_ints msg expected outcome =
  Alcotest.(check (list (pair string int)))
    msg expected
    (Pipe.ints outcome.Pipe.prints)

(* A classic bounded buffer: producer/consumer fully synchronized via
   wait/notifyAll — correct results under every seed, and no races. *)
let buffer_src ~items =
  Printf.sprintf
    {|
    class Buffer {
      int[] slots; int head; int tail; int count;
      Buffer(int cap) { slots = new int[cap]; }
      synchronized void put(int v) {
        while (count == slots.length) { this.wait(); }
        slots[tail] = v;
        tail = (tail + 1) %% slots.length;
        count = count + 1;
        this.notifyAll();
      }
      synchronized int take() {
        while (count == 0) { this.wait(); }
        int v = slots[head];
        head = (head + 1) %% slots.length;
        count = count - 1;
        this.notifyAll();
        return v;
      }
    }
    class Producer extends Thread {
      Buffer b; int n;
      Producer(Buffer b0, int n0) { b = b0; n = n0; }
      void run() { for (int i = 1; i <= n; i = i + 1) { b.put(i); } }
    }
    class Consumer extends Thread {
      Buffer b; int n; int sum;
      Consumer(Buffer b0, int n0) { b = b0; n = n0; }
      void run() { for (int i = 0; i < n; i = i + 1) { sum = sum + b.take(); } }
    }
    class Main {
      static void main() {
        Buffer b = new Buffer(3);
        int n = %d;
        Producer p = new Producer(b, n);
        Consumer c = new Consumer(b, n);
        p.start(); c.start();
        p.join(); c.join();
        print("sum", c.sum);
      }
    }
  |}
    items

let test_producer_consumer () =
  List.iter
    (fun seed ->
      let out = Pipe.run ~seed (buffer_src ~items:20) in
      check_ints (Printf.sprintf "seed %d" seed) [ ("sum", 210) ] out;
      Alcotest.(check (list string))
        (Printf.sprintf "no races (seed %d)" seed)
        [] out.Pipe.race_locs)
    [ 1; 7; 42; 99; 1234 ]

let test_notify_one_vs_all () =
  (* Several waiters; notifyAll wakes everyone. *)
  let out =
    Pipe.run
      {|
      class Gate {
        boolean open; int through;
        synchronized void pass() {
          while (!open) { this.wait(); }
          through = through + 1;
        }
        synchronized void openUp() { open = true; this.notifyAll(); }
      }
      class Passer extends Thread {
        Gate g;
        Passer(Gate g0) { g = g0; }
        void run() { g.pass(); }
      }
      class Main {
        static void main() {
          Gate g = new Gate();
          Passer p1 = new Passer(g);
          Passer p2 = new Passer(g);
          Passer p3 = new Passer(g);
          p1.start(); p2.start(); p3.start();
          int spin = 0;
          for (int i = 0; i < 200; i = i + 1) { spin = spin + 1; }
          g.openUp();
          p1.join(); p2.join(); p3.join();
          print("through", g.through);
        }
      }
    |}
  in
  check_ints "all three pass" [ ("through", 3) ] out

let expect_error msg pattern f =
  match f () with
  | exception Interp.Runtime_error m ->
      Alcotest.(check bool)
        (msg ^ ": got " ^ m)
        true
        (Astring_contains.contains m pattern)
  | _ -> Alcotest.fail (msg ^ ": expected a runtime error")

let test_illegal_monitor_state () =
  expect_error "wait without lock" "IllegalMonitorState" (fun () ->
      Pipe.run
        {| class Main { static void main() { Object o = new Object(); o.wait(); } } |});
  expect_error "notify without lock" "IllegalMonitorState" (fun () ->
      Pipe.run
        {| class Main { static void main() { Object o = new Object(); o.notify(); } } |})

let test_lost_notify_deadlock () =
  expect_error "lost notify" "wait()" (fun () ->
      Pipe.run
        {|
        class W extends Thread {
          Object o;
          W(Object o0) { o = o0; }
          void run() { synchronized (o) { o.wait(); } }
        }
        class Main {
          static void main() {
            Object o = new Object();
            W w = new W(o);
            w.start();
            // Nobody ever notifies: w waits forever.
            w.join();
          }
        }
      |})

let test_wait_releases_reentrant_monitor () =
  (* wait() inside a doubly-entered monitor must release it fully and
     restore the count afterwards. *)
  let out =
    Pipe.run
      {|
      class Cell {
        int v; boolean ready;
        synchronized void outer() { this.inner(); v = v + 100; }
        synchronized void inner() {
          while (!ready) { this.wait(); }
          v = v + 1;
        }
        synchronized void fill() { ready = true; this.notify(); }
      }
      class Waiter extends Thread {
        Cell c;
        Waiter(Cell c0) { c = c0; }
        void run() { c.outer(); }
      }
      class Main {
        static void main() {
          Cell c = new Cell();
          Waiter w = new Waiter(c);
          w.start();
          int spin = 0;
          for (int i = 0; i < 200; i = i + 1) { spin = spin + 1; }
          c.fill();
          w.join();
          print("v", c.v);
        }
      }
    |}
  in
  check_ints "reentrant wait" [ ("v", 101) ] out

let test_wait_on_outer_monitor () =
  (* wait() on a non-innermost monitor: lock b stays held while a is
     released — the waiter keeps excluding accesses under b. *)
  let out =
    Pipe.run
      {|
      class S { int x; boolean go; }
      class Holder extends Thread {
        S s; Object a;
        Holder(S s0, Object a0) { s = s0; a = a0; }
        void run() {
          synchronized (a) {
            synchronized (s) {
              // releases a only; still holds s
              synchronized (a) { }
              s.x = 1;
            }
          }
        }
      }
      class Main {
        static void main() {
          S s = new S();
          Object a = new Object();
          Holder h = new Holder(s, a);
          h.start();
          h.join();
          print("x", s.x);
        }
      }
    |}
  in
  check_ints "nested monitors fine" [ ("x", 1) ] out

(* Detector correctness across wait: the monitor is genuinely released
   during wait, so an access made while waiting-held-locks-dropped can
   race. *)
let test_detector_sees_release_during_wait () =
  let out =
    Pipe.run
      {|
      class S {
        int data; boolean ready;
      }
      class Waiter extends Thread {
        S s;
        Waiter(S s0) { s = s0; }
        void run() {
          synchronized (s) {
            while (!s.ready) { s.wait(); }
            print("data", s.data);
          }
        }
      }
      class Rogue extends Thread {
        S s;
        Rogue(S s0) { s = s0; }
        void run() {
          int spin = 0;
          for (int i = 0; i < 150; i = i + 1) { spin = spin + 1; }
          s.data = 42;          // unsynchronized write: races with the
                                // synchronized reads
          synchronized (s) { s.ready = true; s.notifyAll(); }
        }
      }
      class Main {
        static void main() {
          S s = new S();
          s.data = 1;
          Waiter w = new Waiter(s);
          Rogue r = new Rogue(s);
          w.start(); r.start();
          w.join(); r.join();
        }
      }
    |}
  in
  Alcotest.(check bool) "data race found" true
    (List.exists
       (fun l -> Astring_contains.contains l ".data")
       out.Pipe.race_locs);
  Alcotest.(check bool) "ready is synchronized, quiet" true
    (not
       (List.exists
          (fun l -> Astring_contains.contains l ".ready")
          out.Pipe.race_locs))

let suite =
  [
    Alcotest.test_case "producer/consumer" `Quick test_producer_consumer;
    Alcotest.test_case "notifyAll wakes all" `Quick test_notify_one_vs_all;
    Alcotest.test_case "illegal monitor state" `Quick test_illegal_monitor_state;
    Alcotest.test_case "lost notify deadlock" `Quick test_lost_notify_deadlock;
    Alcotest.test_case "reentrant wait" `Quick test_wait_releases_reentrant_monitor;
    Alcotest.test_case "nested monitors" `Quick test_wait_on_outer_monitor;
    Alcotest.test_case "detector across wait" `Quick test_detector_sees_release_during_wait;
  ]
