lib/baselines/happens_before.mli: Drd_core
