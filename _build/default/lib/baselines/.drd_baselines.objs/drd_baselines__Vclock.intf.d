lib/baselines/vclock.mli: Fmt
