lib/baselines/objrace.mli: Drd_core
