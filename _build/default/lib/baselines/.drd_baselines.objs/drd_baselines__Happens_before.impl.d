lib/baselines/happens_before.ml: Array Drd_core Hashtbl List Vclock
