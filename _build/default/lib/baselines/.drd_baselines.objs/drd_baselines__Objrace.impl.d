lib/baselines/objrace.ml: Drd_core Hashtbl List
