lib/baselines/eraser.mli: Drd_core
