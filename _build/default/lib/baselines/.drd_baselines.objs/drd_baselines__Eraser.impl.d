lib/baselines/eraser.ml: Drd_core Hashtbl List Option
