lib/baselines/vclock.ml: Array Fmt
