module Ir = Drd_ir.Ir
module Dominance = Drd_ir.Dominance

(* Single-instance statements and the conservative must points-to
   analysis built on them (paper Section 5.3).

   A statement is single-instance when it executes at most once in any
   execution: its block is outside every natural loop of its method and
   the method itself is single-instance — called from exactly one
   single-instance call site ([main] is the base case; thread [run]
   methods count their start sites as call sites; any recursion or
   virtual fan-in disqualifies).

   An abstract object is single-instance when its allocation site is;
   [MustPT(x) = {o}] when the may points-to set of [x] is exactly one
   single-instance object. *)

type t = {
  pt : Pointsto.t;
  single_method : (string, bool) Hashtbl.t;
  in_loop : (string * int, bool) Hashtbl.t; (* (method, iid) -> in a loop *)
}

let compute_in_loop (prog : Ir.program) tbl =
  Ir.iter_mirs prog (fun m ->
      let dom = Dominance.compute m in
      let loops = Dominance.natural_loops m dom in
      let loop_blocks = Hashtbl.create 16 in
      List.iter
        (fun (_, body) ->
          List.iter (fun b -> Hashtbl.replace loop_blocks b ()) body)
        loops;
      Ir.iter_blocks m (fun b ->
          let inl = Hashtbl.mem loop_blocks b.Ir.b_label in
          List.iter
            (fun (i : Ir.instr) ->
              Hashtbl.replace tbl (Ir.mir_key m, i.Ir.i_id) inl)
            b.Ir.b_instrs))

let create (pt : Pointsto.t) : t =
  let t =
    { pt; single_method = Hashtbl.create 64; in_loop = Hashtbl.create 1024 }
  in
  compute_in_loop pt.Pointsto.prog t.in_loop;
  t

let stmt_in_loop t key iid =
  Option.value (Hashtbl.find_opt t.in_loop (key, iid)) ~default:true

(* Memoized with cycle detection: a method on the current resolution
   path is recursive, hence not single. *)
let rec single_method ?(visiting = []) t key =
  match Hashtbl.find_opt t.single_method key with
  | Some b -> b
  | None ->
      if List.mem key visiting then false
      else begin
        let visiting = key :: visiting in
        let result =
          if key = t.pt.Pointsto.prog.Ir.p_main then true
          else
            let callers = Pointsto.callers_of t.pt key in
            let starters = Pointsto.start_sites_of t.pt key in
            match (callers, starters) with
            | [ c ], [] | [], [ c ] ->
                single_method ~visiting t c.Pointsto.cs_method
                && not (stmt_in_loop t c.Pointsto.cs_method c.Pointsto.cs_iid)
            | _ -> false
        in
        Hashtbl.replace t.single_method key result;
        result
      end

let single_stmt t key iid = single_method t key && not (stmt_in_loop t key iid)

(* Is this abstract object single-instance? *)
let single_obj t ao =
  let o = Pointsto.obj t.pt ao in
  match o.Pointsto.ao_kind with
  | Pointsto.Aclassobj _ | Pointsto.Amain -> true
  | Pointsto.Aobj _ | Pointsto.Aarr _ -> (
      match o.Pointsto.ao_site with
      | Some (key, iid) -> single_stmt t key iid
      | None -> false)

(* Must points-to of a register in a method: the singleton may set when
   its object is single-instance, empty otherwise. *)
let must_pt_reg t key reg =
  let may = Pointsto.pts t.pt (Pointsto.Vreg (key, reg)) in
  match Pointsto.Iset.elements may with
  | [ o ] when single_obj t o -> Pointsto.Iset.singleton o
  | _ -> Pointsto.Iset.empty
