lib/static/must.ml: Drd_ir Hashtbl List Option Pointsto
