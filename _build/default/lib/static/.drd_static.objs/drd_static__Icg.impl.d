lib/static/icg.ml: Drd_ir Hashtbl List Must Option Pointsto
