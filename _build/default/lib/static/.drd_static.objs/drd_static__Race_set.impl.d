lib/static/race_set.ml: Array Drd_core Drd_ir Event Fmt Hashtbl Icg List Must Pointsto Thread_spec
