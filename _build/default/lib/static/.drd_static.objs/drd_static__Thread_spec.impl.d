lib/static/thread_spec.ml: Array Drd_ir Drd_lang Hashtbl List Option Pointsto
