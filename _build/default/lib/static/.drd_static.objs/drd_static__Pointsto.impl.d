lib/static/pointsto.ml: Array Drd_ir Drd_lang Hashtbl Int List Option Set
