lib/static/race_set.mli: Drd_ir Fmt Pointsto Thread_spec
