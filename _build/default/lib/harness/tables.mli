(** Regeneration of the paper's evaluation tables and figures
    (Section 8), printed to stdout in the same row/column structure.
    Each function also returns the raw numbers so benches and tests can
    assert on them.  See `EXPERIMENTS.md` for paper-vs-measured. *)

val contains_sub : string -> string -> bool
(** [contains_sub needle haystack]. *)

val table1 : unit -> unit
(** Benchmark characteristics: LoC, dynamic threads, description. *)

type t2_cell = { wall : float; overhead : float; events : int; steps : int }

val table2 :
  ?runs:int -> ?perf:bool -> unit -> (string * t2_cell list) list
(** Runtime performance of the six Table 2 configurations on the
    CPU-bound benchmarks: best-of-[runs] wall time, overhead vs Base,
    and the deterministic access-event count (the machine-independent
    reproduction metric).  [perf] selects the larger workload sizes. *)

val table3 : unit -> (string * int list) list
(** Racy objects reported under Full / FieldsMerged / NoOwnership. *)

val figure1 : unit -> unit
(** The architecture as a phase trace on tsp: static race set →
    instrumentation → runtime funnel. *)

val figure2 : unit -> unit
(** The three-thread example, including the feasible-race variant and
    the happens-before comparison. *)

val figure3 : unit -> unit
(** Loop peeling: trace counts and dynamic events before/after, plus
    the optimized IR. *)

val sor_vs_sor2 : unit -> ((string * string) * int) list
(** Section 8.1's hoisting claim: Full/NoDominators trace and event
    counts for the original sor vs the hoisted sor2. *)

val space : unit -> int * int
(** Section 8.2: (trie nodes, locations) for tsp. *)

val join_example : unit -> unit
(** Section 8.3: the join + common-lock statistics idiom, ours vs
    Eraser. *)

val baselines : unit -> (string * int list) list
(** Section 9: racy objects under Full / Eraser / ObjRace /
    HappensBefore for all five benchmarks. *)
