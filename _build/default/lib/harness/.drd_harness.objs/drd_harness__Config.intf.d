lib/harness/config.mli: Drd_vm
