lib/harness/pipeline.mli: Config Detector Drd_core Drd_ir Drd_static Drd_vm Event_log Immutability Lock_order Names Report
