lib/harness/tables.ml: Config Drd_core Drd_ir Drd_static Format List Option Pipeline Printf Programs String
