lib/harness/config.ml: Drd_vm List String
