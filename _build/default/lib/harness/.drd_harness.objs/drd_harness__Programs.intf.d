lib/harness/programs.mli:
