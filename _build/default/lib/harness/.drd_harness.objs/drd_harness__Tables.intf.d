lib/harness/tables.mli:
