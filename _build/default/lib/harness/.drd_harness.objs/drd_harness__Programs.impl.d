lib/harness/programs.ml: List Printf String
