(* SSA construction "on the side": the IR is not rewritten; instead we
   compute, for every register use at every instruction, the SSA value
   (definition instance) that reaches it.  Phi values are placed with
   the standard iterated-dominance-frontier algorithm and renaming is a
   dominator-tree walk.  The result feeds dominance-based value
   numbering (paper Section 6.2: "conversion to SSA form is performed,
   during which the dominance relation is computed"). *)

type value = int (* SSA value id *)

type def_site =
  | Dparam of int (* register holding a parameter at entry *)
  | Dinstr of int (* instruction id *)
  | Dphi of int * int (* block, register *)

type t = {
  dom : Dominance.t;
  nvalues : int;
  def_site : def_site array; (* SSA value -> its definition site *)
  use_val : (int * int, value) Hashtbl.t; (* (instr id, reg) -> value *)
  phi_args : (int * int, (int * value) list) Hashtbl.t;
      (* (block, reg) -> (pred block, incoming value) list *)
  phis_of_block : (int, int list) Hashtbl.t; (* block -> regs with phis *)
}

let compute (m : Ir.mir) : t =
  let dom = Dominance.compute m in
  let nregs = m.Ir.mir_nregs in
  let nblocks = Ir.n_blocks m in
  (* Definition blocks per register. *)
  let def_blocks = Array.make nregs [] in
  for r = 0 to m.Ir.mir_nparams - 1 do
    def_blocks.(r) <- [ m.Ir.mir_entry ]
  done;
  Ir.iter_blocks m (fun b ->
      if Dominance.reachable dom b.Ir.b_label then
        List.iter
          (fun (i : Ir.instr) ->
            match Ir.def i.Ir.i_op with
            | Some d -> def_blocks.(d) <- b.Ir.b_label :: def_blocks.(d)
            | None -> ())
          b.Ir.b_instrs);
  (* Phi placement via iterated dominance frontiers. *)
  let df = Dominance.frontiers m dom in
  let has_phi = Hashtbl.create 64 in
  for r = 0 to nregs - 1 do
    let work = ref def_blocks.(r) in
    let in_work = Hashtbl.create 8 in
    List.iter (fun b -> Hashtbl.replace in_work b ()) !work;
    while !work <> [] do
      match !work with
      | [] -> ()
      | b :: rest ->
          work := rest;
          List.iter
            (fun f ->
              if not (Hashtbl.mem has_phi (f, r)) then begin
                Hashtbl.replace has_phi (f, r) ();
                if not (Hashtbl.mem in_work f) then begin
                  Hashtbl.replace in_work f ();
                  work := f :: !work
                end
              end)
            df.(b)
    done
  done;
  let phis_of_block = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (b, r) () ->
      let cur = Option.value (Hashtbl.find_opt phis_of_block b) ~default:[] in
      Hashtbl.replace phis_of_block b (r :: cur))
    has_phi;
  (* Renaming. *)
  let nvalues = ref 0 in
  let def_sites = ref [] in
  let fresh_value site =
    let v = !nvalues in
    incr nvalues;
    def_sites := site :: !def_sites;
    v
  in
  let stacks = Array.make nregs [] in
  let use_val = Hashtbl.create 256 in
  let phi_args = Hashtbl.create 32 in
  let phi_val = Hashtbl.create 32 in
  (* Parameters are defined at entry. *)
  let param_vals =
    List.init m.Ir.mir_nparams (fun r -> (r, fresh_value (Dparam r)))
  in
  let preds = Array.make nblocks [] in
  Array.iter
    (fun b ->
      List.iter (fun s -> preds.(s) <- b :: preds.(s)) (Ir.successors m b))
    dom.Dominance.rpo;
  let top r = match stacks.(r) with v :: _ -> Some v | [] -> None in
  let rec walk b =
    let pushed = ref [] in
    let push r v =
      stacks.(r) <- v :: stacks.(r);
      pushed := r :: !pushed
    in
    (* Phis of this block define first. *)
    let phis = Option.value (Hashtbl.find_opt phis_of_block b) ~default:[] in
    List.iter
      (fun r ->
        let v = fresh_value (Dphi (b, r)) in
        Hashtbl.replace phi_val (b, r) v;
        push r v)
      phis;
    if b = m.Ir.mir_entry then
      List.iter (fun (r, v) -> push r v) param_vals;
    let blk = Ir.block m b in
    List.iter
      (fun (i : Ir.instr) ->
        List.iter
          (fun r ->
            match top r with
            | Some v -> Hashtbl.replace use_val (i.Ir.i_id, r) v
            | None -> ())
          (Ir.uses i.Ir.i_op);
        match Ir.def i.Ir.i_op with
        | Some d -> push d (fresh_value (Dinstr i.Ir.i_id))
        | None -> ())
      blk.Ir.b_instrs;
    (* Record phi arguments flowing along the edges to successors. *)
    List.iter
      (fun s ->
        let sphis = Option.value (Hashtbl.find_opt phis_of_block s) ~default:[] in
        List.iter
          (fun r ->
            match top r with
            | Some v ->
                let cur =
                  Option.value (Hashtbl.find_opt phi_args (s, r)) ~default:[]
                in
                Hashtbl.replace phi_args (s, r) ((b, v) :: cur)
            | None -> ())
          sphis)
      (Ir.successors m b);
    List.iter walk dom.Dominance.children.(b);
    List.iter (fun r -> stacks.(r) <- List.tl stacks.(r)) !pushed
  in
  walk m.Ir.mir_entry;
  {
    dom;
    nvalues = !nvalues;
    def_site = Array.of_list (List.rev !def_sites);
    use_val;
    phi_args;
    phis_of_block;
  }

(* The SSA value reaching the use of register [r] at instruction [iid];
   [None] for uses in unreachable code or of never-defined registers. *)
let value_of_use t iid r = Hashtbl.find_opt t.use_val (iid, r)

let def_site_of t v = t.def_site.(v)

let phi_args_of t block r =
  Option.value (Hashtbl.find_opt t.phi_args (block, r)) ~default:[]
