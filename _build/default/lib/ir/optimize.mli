(** Classical scalar optimizations over the register IR: local constant
    and copy propagation, constant folding, branch folding, and
    liveness-based dead-code elimination.

    This models the "other optimization phases" of the Jalapeño
    compiler the paper's instrumentation lives among (Section 6.2):
    crucially, [Trace] pseudo-instructions are treated as having an
    unknown side effect — exactly as the paper describes — so the
    optimizer never deletes instrumentation, and memory accesses are
    never removed either (they are the events being monitored).

    Run after instrumentation and static weaker-than elimination;
    semantics (including the access-event stream) are preserved. *)

val optimize_mir : Ir.mir -> int
(** Optimize one method in place; returns the number of instructions
    removed. *)

val optimize : Ir.program -> int
(** Optimize every method; returns the total instructions removed. *)
