lib/ir/value_numbering.mli: Ir Ssa
