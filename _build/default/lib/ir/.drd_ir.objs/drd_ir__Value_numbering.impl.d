lib/ir/value_numbering.ml: Array Drd_lang Hashtbl Ir List Ssa
