lib/ir/dominance.ml: Array Hashtbl Ir List
