lib/ir/ssa.mli: Dominance Hashtbl Ir
