lib/ir/optimize.mli: Ir
