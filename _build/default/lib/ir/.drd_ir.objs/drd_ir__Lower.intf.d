lib/ir/lower.mli: Drd_lang Ir Site_table
