lib/ir/dominance.mli: Ir
