lib/ir/ssa.ml: Array Dominance Hashtbl Ir List Option
