lib/ir/pretty.ml: Array Drd_core Drd_lang Fmt Ir
