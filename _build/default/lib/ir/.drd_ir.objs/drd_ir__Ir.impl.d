lib/ir/ir.ml: Array Drd_core Drd_lang Hashtbl List Option Site_table
