lib/ir/site_table.ml: List Printf
