lib/ir/optimize.ml: Array Ast Fun Hashtbl Int Ir List Option Set
