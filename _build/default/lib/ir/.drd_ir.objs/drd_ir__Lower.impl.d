lib/ir/lower.ml: Array Drd_lang Hashtbl Ir List Option Site_table
