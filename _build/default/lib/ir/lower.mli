module Ast = Drd_lang.Ast
module Tast = Drd_lang.Tast
(** Compilation of the typed AST into the register IR.

    Lowering makes synchronization explicit ([MonitorEnter]/[MonitorExit]
    with lexical region identities, synchronized methods included),
    expands short-circuit booleans into control flow, inserts the PEIs
    (null and bounds checks) that make almost every Java statement
    potentially excepting, and records on every instruction the
    synchronization-nesting path used by the static weaker-than
    analysis. *)

val lower_program : Tast.tprogram -> Ir.program
(** Lower every method of the program.  No instrumentation is inserted
    here; see [Drd_instr.Insert]. *)

val lower_method : Tast.tprogram -> Site_table.t -> Tast.tmethod -> Ir.mir
(** Lower a single method (exposed for tests and for re-lowering after
    AST-level loop peeling). *)
