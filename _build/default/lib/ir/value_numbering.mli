(** Dominance-based global value numbering over the side-SSA form.

    Two uses with the same value number hold the same value in every
    execution — the property behind the static weaker-than check
    [valnum(o_i) = valnum(o_j)] (paper Section 6.1).  Pure operations
    (constants, copies, arithmetic with commutative normalization,
    array length, class objects) are numbered by congruence; memory
    reads, allocations and calls are fresh; phis reuse their arguments'
    number only when all incoming values agree, so any loop-carried
    value is fresh (the conservative choice). *)

type t

val compute : Ir.mir -> Ssa.t -> t

val vn_of_use : t -> int -> int -> int option
(** [vn_of_use t iid reg]: the value number of the use of [reg] at
    instruction [iid]. *)
