(* Dominator computation over a method CFG using the Cooper–Harvey–
   Kennedy iterative algorithm, plus dominator-tree pre/post numbering
   for O(1) dominance queries.  This is the dominance relation the
   static weaker-than analysis uses for its [Exec] predicate (paper
   Section 6.1): [dom] rather than [pdom], because PEIs make
   post-dominance almost useless in a Java-like language. *)

type t = {
  entry : int;
  idom : int array; (* immediate dominator; idom.(entry) = entry; -1 unreachable *)
  rpo : int array; (* reachable blocks in reverse postorder *)
  pre : int array; (* dominator-tree preorder number; -1 unreachable *)
  post : int array; (* dominator-tree postorder number *)
  children : int list array; (* dominator-tree children *)
}

let compute (m : Ir.mir) : t =
  let n = Ir.n_blocks m in
  let entry = m.Ir.mir_entry in
  (* Postorder DFS. *)
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Ir.successors m b);
      order := b :: !order
    end
  in
  dfs entry;
  let rpo = Array.of_list !order in
  let rpo_num = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_num.(b) <- i) rpo;
  (* Predecessors of reachable blocks. *)
  let preds = Array.make n [] in
  Array.iter
    (fun b -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) (Ir.successors m b))
    rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed = List.filter (fun p -> idom.(p) <> -1) preds.(b) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  (* Dominator tree + pre/post numbering. *)
  let children = Array.make n [] in
  Array.iter
    (fun b -> if b <> entry && idom.(b) <> -1 then children.(idom.(b)) <- b :: children.(idom.(b)))
    rpo;
  (* Walking dominator-tree children in reverse postorder makes the
     renaming/numbering walk see branch values before join-point phis. *)
  Array.iteri
    (fun b cs ->
      children.(b) <-
        List.sort (fun x y -> compare rpo_num.(x) rpo_num.(y)) cs)
    children;
  let pre = Array.make n (-1) and post = Array.make n (-1) in
  let c = ref 0 in
  let rec number b =
    pre.(b) <- !c;
    incr c;
    List.iter number children.(b);
    post.(b) <- !c;
    incr c
  in
  number entry;
  { entry; idom; rpo; pre; post; children }

(* [dominates d a b]: does block [a] dominate block [b] (reflexively)? *)
let dominates d a b =
  d.pre.(a) >= 0 && d.pre.(b) >= 0 && d.pre.(a) <= d.pre.(b)
  && d.post.(b) <= d.post.(a)

let strictly_dominates d a b = a <> b && dominates d a b

let idom d b = if b = d.entry || d.idom.(b) = -1 then None else Some d.idom.(b)

let reachable d b = d.pre.(b) >= 0

(* Dominance frontiers (Cytron et al.), needed for SSA phi placement. *)
let frontiers (m : Ir.mir) (d : t) : int list array =
  let n = Ir.n_blocks m in
  let df = Array.make n [] in
  let preds = Array.make n [] in
  Array.iter
    (fun b ->
      if reachable d b then
        List.iter (fun s -> preds.(s) <- b :: preds.(s)) (Ir.successors m b))
    d.rpo;
  Array.iter
    (fun b ->
      if List.length preds.(b) >= 2 then
        List.iter
          (fun p ->
            let runner = ref p in
            while !runner <> d.idom.(b) do
              if not (List.mem b df.(!runner)) then
                df.(!runner) <- b :: df.(!runner);
              runner := d.idom.(!runner)
            done)
          preds.(b))
    d.rpo;
  df

(* Natural loops: back edges (t -> h with h dominating t) and their loop
   bodies; used by tests and by loop-related diagnostics. *)
let natural_loops (m : Ir.mir) (d : t) : (int * int list) list =
  let loops = ref [] in
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          if dominates d s b then begin
            (* back edge b -> s; collect body by reverse reachability *)
            let body = Hashtbl.create 8 in
            Hashtbl.replace body s ();
            let preds = Array.make (Ir.n_blocks m) [] in
            Array.iter
              (fun b' ->
                if reachable d b' then
                  List.iter
                    (fun s' -> preds.(s') <- b' :: preds.(s'))
                    (Ir.successors m b'))
              d.rpo;
            let rec walk x =
              if not (Hashtbl.mem body x) then begin
                Hashtbl.replace body x ();
                List.iter walk preds.(x)
              end
            in
            walk b;
            loops :=
              (s, Hashtbl.fold (fun k () acc -> k :: acc) body [])
              :: !loops
          end)
        (Ir.successors m b))
    d.rpo;
  !loops
