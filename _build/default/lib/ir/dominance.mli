(** Dominators over a method CFG (Cooper–Harvey–Kennedy), dominance
    frontiers and natural loops.

    This is the dominance relation the static weaker-than analysis uses
    for its [Exec] predicate (paper Section 6.1) — [dom] rather than
    [pdom], because explicit PEIs make post-dominance almost useless in
    a Java-like language — and the substrate for SSA construction. *)

type t = {
  entry : int;
  idom : int array;
      (** Immediate dominator per block; [idom.(entry) = entry]; [-1]
          for unreachable blocks. *)
  rpo : int array;  (** Reachable blocks in reverse postorder. *)
  pre : int array;  (** Dominator-tree preorder number; [-1] unreachable. *)
  post : int array;  (** Dominator-tree postorder number. *)
  children : int list array;
      (** Dominator-tree children, sorted in reverse postorder so that
          analysis walks see branch blocks before join blocks. *)
}

val compute : Ir.mir -> t

val dominates : t -> int -> int -> bool
(** [dominates d a b]: does block [a] dominate block [b]?  Reflexive;
    O(1) via pre/post numbering. *)

val strictly_dominates : t -> int -> int -> bool

val idom : t -> int -> int option
(** [None] for the entry block and unreachable blocks. *)

val reachable : t -> int -> bool

val frontiers : Ir.mir -> t -> int list array
(** Dominance frontiers (Cytron et al.), for SSA phi placement. *)

val natural_loops : Ir.mir -> t -> (int * int list) list
(** [(header, body)] per back edge; the header is in the body and
    dominates every body block. *)
