(* Source-site registry.  Every traced access gets a site id; the table
   renders sites for race reports ("Class.method:line (write o.f)"). *)

type info = {
  s_method : string; (* "Class.name" *)
  s_line : int;
  s_desc : string; (* e.g. "write f" or "read [..]" *)
  s_iid : int; (* id of the access instruction the trace observes *)
}

type t = { mutable infos : info list; mutable n : int }

let create () = { infos = []; n = 0 }

let add t info =
  let id = t.n in
  t.n <- t.n + 1;
  t.infos <- info :: t.infos;
  id

let get t id = List.nth t.infos (t.n - 1 - id)

let count t = t.n

let name t id =
  let i = get t id in
  Printf.sprintf "%s:%d (%s)" i.s_method i.s_line i.s_desc

let iter t f =
  List.iteri (fun rev_idx info -> f (t.n - 1 - rev_idx) info) t.infos
