module Ast = Drd_lang.Ast
(* Dominance-based global value numbering on the side-SSA form.  Two
   uses with the same value number are guaranteed to hold the same value
   in every execution — the property the static weaker-than analysis
   needs for its [valnum(o_i) = valnum(o_j)] check (paper Section 6.1).

   Pure, deterministic operations (constants, copies, arithmetic, array
   length, class objects) are numbered by congruence; memory reads,
   allocations and calls get fresh numbers.  Phi values get the common
   number of their arguments when all incoming values are already
   numbered and agree (which handles the join of identical values), and
   a fresh number otherwise — in particular any phi fed by a back edge
   is fresh, which is the conservative choice. *)

type t = {
  ssa : Ssa.t;
  vn_of_value : int array; (* SSA value -> value number *)
}

type key =
  | Kconst of Ir.const
  | Kbinop of Ast.binop * int * int
  | Kunop of Ast.unop * int
  | Klen of int
  | Kclassobj of string

let compute (m : Ir.mir) (ssa : Ssa.t) : t =
  let vn_of_value = Array.make (max ssa.Ssa.nvalues 1) (-1) in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let table : (key, int) Hashtbl.t = Hashtbl.create 256 in
  let keyed k =
    match Hashtbl.find_opt table k with
    | Some vn -> vn
    | None ->
        let vn = fresh () in
        Hashtbl.add table k vn;
        vn
  in
  (* Instruction table by id for def-site lookup. *)
  let instr_by_id = Hashtbl.create 256 in
  Ir.iter_instrs m (fun _ i -> Hashtbl.replace instr_by_id i.Ir.i_id i);
  let vn_use iid r =
    match Ssa.value_of_use ssa iid r with
    | Some v when vn_of_value.(v) >= 0 -> Some vn_of_value.(v)
    | _ -> None
  in
  (* Normalize commutative operators. *)
  let norm_binop op a b =
    match (op : Ast.binop) with
    | Ast.Add | Ast.Mul | Ast.Eq | Ast.Ne -> if a <= b then (a, b) else (b, a)
    | _ -> (a, b)
  in
  let number_value v =
    match Ssa.def_site_of ssa v with
    | Ssa.Dparam _ -> fresh ()
    | Ssa.Dphi (b, r) -> (
        let args = Ssa.phi_args_of ssa b r in
        match args with
        | (_, first) :: rest
          when vn_of_value.(first) >= 0
               && List.for_all
                    (fun (_, a) ->
                      vn_of_value.(a) >= 0
                      && vn_of_value.(a) = vn_of_value.(first))
                    rest ->
            vn_of_value.(first)
        | _ -> fresh ())
    | Ssa.Dinstr iid -> (
        match Hashtbl.find_opt instr_by_id iid with
        | None -> fresh ()
        | Some i -> (
            match i.Ir.i_op with
            | Ir.Const (_, c) -> keyed (Kconst c)
            | Ir.Move (_, s) -> (
                match vn_use iid s with Some vn -> vn | None -> fresh ())
            | Ir.Binop (op, _, l, r) -> (
                match (vn_use iid l, vn_use iid r) with
                | Some a, Some b ->
                    let a, b = norm_binop op a b in
                    keyed (Kbinop (op, a, b))
                | _ -> fresh ())
            | Ir.Unop (op, _, s) -> (
                match vn_use iid s with
                | Some a -> keyed (Kunop (op, a))
                | None -> fresh ())
            | Ir.ArrLen (_, a) -> (
                (* Array lengths are immutable after allocation. *)
                match vn_use iid a with
                | Some va -> keyed (Klen va)
                | None -> fresh ())
            | Ir.ClassObj (_, c) -> keyed (Kclassobj c)
            | _ -> fresh ()))
  in
  (* Number values in dominator-tree preorder so that uses are numbered
     before (forward) defs that consume them.  SSA value ids were
     allocated in exactly that walk order, so ascending id order works. *)
  for v = 0 to ssa.Ssa.nvalues - 1 do
    vn_of_value.(v) <- number_value v
  done;
  { ssa; vn_of_value }

(* Value number of the use of register [r] at instruction [iid]. *)
let vn_of_use t iid r =
  match Ssa.value_of_use t.ssa iid r with
  | Some v when t.vn_of_value.(v) >= 0 -> Some t.vn_of_value.(v)
  | _ -> None
