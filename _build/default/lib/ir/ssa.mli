(** SSA construction "on the side": the IR is not rewritten; instead,
    for every register use at every instruction, the analysis computes
    the SSA value (definition instance) reaching it.  Phi values are
    placed with iterated dominance frontiers; renaming is a
    dominator-tree walk.  This feeds dominance-based value numbering
    (paper Section 6.2: "conversion to SSA form is performed, during
    which the dominance relation is computed"). *)

type value = int
(** SSA value id.  Ids are allocated in dominator-tree walk order, so
    ascending id order is a valid evaluation order for forward
    dataflow. *)

type def_site =
  | Dparam of int  (** Register holding a parameter at entry. *)
  | Dinstr of int  (** Instruction id of the defining instruction. *)
  | Dphi of int * int  (** (block, register) of a placed phi. *)

type t = {
  dom : Dominance.t;
  nvalues : int;
  def_site : def_site array;
  use_val : (int * int, value) Hashtbl.t;
  phi_args : (int * int, (int * value) list) Hashtbl.t;
  phis_of_block : (int, int list) Hashtbl.t;
}

val compute : Ir.mir -> t

val value_of_use : t -> int -> int -> value option
(** [value_of_use t iid reg]: the SSA value reaching the use of [reg]
    at instruction [iid]; [None] in unreachable code or for
    never-defined registers. *)

val def_site_of : t -> value -> def_site

val phi_args_of : t -> int -> int -> (int * value) list
(** [(predecessor block, incoming value)] pairs of the phi for
    [(block, reg)]. *)
