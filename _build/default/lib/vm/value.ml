(* Runtime values of the MiniJava VM. *)

type obj_id = int

type t = Vint of int | Vbool of bool | Vnull | Vref of obj_id

let default_of (ty : Drd_lang.Ast.ty) =
  match ty with
  | Drd_lang.Ast.Tint -> Vint 0
  | Drd_lang.Ast.Tbool -> Vbool false
  | _ -> Vnull

let pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vnull -> Fmt.string ppf "null"
  | Vref o -> Fmt.pf ppf "#%d" o

let to_int = function Vint n -> n | _ -> invalid_arg "expected int"
let to_bool = function Vbool b -> b | _ -> invalid_arg "expected boolean"
