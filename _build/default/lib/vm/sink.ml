(* The interface between the running (instrumented) program and a
   datarace detector.  The VM pushes access events at [Trace]
   pseudo-instructions (or, in [all_accesses] mode, at every memory
   access), plus the synchronization and thread-lifecycle notifications
   the runtime optimizer and the happens-before baseline need. *)

open Drd_core

type t = {
  access :
    tid:Event.thread_id ->
    loc:Event.loc_id ->
    kind:Event.kind ->
    locks:Event.Lockset.t ->
    site:Event.site_id ->
    unit;
  acquire : tid:Event.thread_id -> lock:Event.lock_id -> unit;
      (* outermost acquisition of a real lock *)
  release : tid:Event.thread_id -> lock:Event.lock_id -> unit;
  thread_start : parent:Event.thread_id -> child:Event.thread_id -> unit;
  thread_join : joiner:Event.thread_id -> joinee:Event.thread_id -> unit;
  thread_exit : tid:Event.thread_id -> unit;
  call :
    (tid:Event.thread_id ->
    obj:int ->
    locks:Event.Lockset.t ->
    site:Event.site_id ->
    unit)
    option;
      (* invoked at every virtual call with the receiver object; used by
         the object-race baseline, which treats a method call on an
         object as a write to it *)
}

let null =
  {
    access = (fun ~tid:_ ~loc:_ ~kind:_ ~locks:_ ~site:_ -> ());
    acquire = (fun ~tid:_ ~lock:_ -> ());
    release = (fun ~tid:_ ~lock:_ -> ());
    thread_start = (fun ~parent:_ ~child:_ -> ());
    thread_join = (fun ~joiner:_ ~joinee:_ -> ());
    thread_exit = (fun ~tid:_ -> ());
    call = None;
  }
