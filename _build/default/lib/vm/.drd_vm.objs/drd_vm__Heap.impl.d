lib/vm/heap.ml: Array Drd_lang Hashtbl Printf Value
