lib/vm/interp.ml: Array Ast Drd_core Drd_ir Drd_lang Event Format Hashtbl Heap List Memloc Option Printf Pseudo_lock Random Sink Value
