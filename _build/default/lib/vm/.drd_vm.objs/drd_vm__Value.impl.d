lib/vm/value.ml: Drd_lang Fmt
