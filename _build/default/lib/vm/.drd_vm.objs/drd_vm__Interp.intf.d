lib/vm/interp.mli: Drd_ir Heap Memloc Sink Value
