lib/vm/memloc.ml: Array Drd_lang Hashtbl Heap Printf Seq
