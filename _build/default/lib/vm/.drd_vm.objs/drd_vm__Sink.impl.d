lib/vm/sink.ml: Drd_core Event
