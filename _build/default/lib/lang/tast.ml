(* Typed abstract syntax.  The typechecker resolves every identifier to
   a local slot, an instance field (with its layout index), a static
   field slot, or a method, and annotates every expression with its
   type.  This is the representation consumed by the IR compiler and by
   the AST-level loop-peeling transformation. *)

open Ast

type field_info = {
  fld_owner : string; (* declaring class *)
  fld_name : string;
  fld_ty : ty;
  fld_index : int; (* index into the object's field array *)
}

type sfield_info = {
  sf_class : string;
  sf_name : string;
  sf_ty : ty;
  sf_slot : int; (* index into the global statics array *)
}

type texpr = { te : texpr_kind; tty : ty; tepos : pos }

and texpr_kind =
  | TInt of int
  | TBool of bool
  | TNull
  | TThis
  | TLocal of int (* slot; slot 0 is [this] in instance methods *)
  | TGetField of texpr * field_info
  | TGetStatic of sfield_info
  | TIndex of texpr * texpr
  | TLen of texpr (* e.length on arrays *)
  | TCall of tcall
  | TNew of string * texpr list (* class name; ctor checked separately *)
  | TNewArray of ty * texpr list (* element type after peeling dims, sized dims *)
  | TBinop of binop * texpr * texpr
  | TUnop of unop * texpr

and tcall =
  | CVirtual of texpr * string * texpr list * ty
      (* receiver, method name (dispatched on dynamic class), args, return type *)
  | CStatic of string * string * texpr list * ty (* class, method, args, ret *)
  | CStart of texpr (* Thread.start() *)
  | CJoin of texpr (* Thread.join() *)
  | CYield (* Thread.yield(): scheduling hint, static *)
  | CWait of texpr (* o.wait(): release the monitor and sleep *)
  | CNotify of texpr (* o.notify() *)
  | CNotifyAll of texpr (* o.notifyAll() *)

type tstmt = { ts : tstmt_kind; tspos : pos }

and tstmt_kind =
  | TDecl of int * ty * texpr option (* slot, declared type, initializer *)
  | TAssignLocal of int * texpr
  | TSetField of texpr * field_info * texpr
  | TSetStatic of sfield_info * texpr
  | TSetIndex of texpr * texpr * texpr (* array, index, value *)
  | TExpr of texpr
  | TIf of texpr * tstmt list * tstmt list
  | TWhile of texpr * tstmt list
  | TFor of tstmt option * texpr option * tstmt option * tstmt list
  | TReturn of texpr option
  | TSync of texpr * tstmt list
  | TPrint of string * texpr option
  | TBreak
  | TContinue

type tmethod = {
  tm_class : string;
  tm_name : string;
  tm_static : bool;
  tm_sync : bool;
  tm_ret : ty;
  tm_param_tys : ty list;
  tm_nslots : int; (* total local slots incl. this and params *)
  tm_body : tstmt list;
  tm_pos : pos;
  tm_is_ctor : bool;
}

(* Key identifying a method implementation: class that declares it plus
   its name ("<init>" for constructors). *)
let method_key cls name = cls ^ "." ^ name

type class_info = {
  cls_name : string;
  cls_super : string option;
  cls_fields : field_info array; (* full layout, inherited first *)
  cls_vtable : (string * string) list;
      (* method name -> implementing class (for dynamic dispatch) *)
  cls_is_thread : bool; (* subclass of Thread *)
  cls_pos : pos;
}

type tprogram = {
  classes : (string, class_info) Hashtbl.t;
  methods : (string, tmethod) Hashtbl.t; (* keyed by [method_key] *)
  statics : sfield_info array;
  main_class : string; (* class defining [static void main()] *)
}

let find_class p name = Hashtbl.find_opt p.classes name

let find_method p cls name = Hashtbl.find_opt p.methods (method_key cls name)

(* Dynamic dispatch resolution: the implementing class of [name] for an
   object of dynamic class [cls]. *)
let dispatch p cls name =
  match find_class p cls with
  | None -> None
  | Some ci -> (
      match List.assoc_opt name ci.cls_vtable with
      | Some impl -> find_method p impl name
      | None -> None)

let rec is_subclass p sub super =
  sub = super
  ||
  match find_class p sub with
  | Some { cls_super = Some s; _ } -> is_subclass p s super
  | _ -> false

(* Iterate methods in a stable order (sorted by key) — analyses rely on
   determinism. *)
let iter_methods p f =
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) p.methods []
  |> List.sort compare
  |> List.iter (fun (_, m) -> f m)

let fold_methods p f init =
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) p.methods []
  |> List.sort compare
  |> List.fold_left (fun acc (_, m) -> f acc m) init
