(* Abstract syntax of MiniJava, the concurrent object-oriented source
   language of this reproduction.  It models the Java subset the paper's
   benchmarks rely on: classes with single inheritance, instance/static
   fields and methods, synchronized methods and blocks, threads
   (subclasses of the built-in [Thread] with [start]/[join]), arrays,
   and structured control flow. *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

type ty =
  | Tint
  | Tbool
  | Tclass of string
  | Tarray of ty
  | Tvoid (* return types only *)

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "boolean"
  | Tclass c -> Fmt.string ppf c
  | Tarray t -> Fmt.pf ppf "%a[]" pp_ty t
  | Tvoid -> Fmt.string ppf "void"

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And (* short-circuit && *)
  | Or (* short-circuit || *)

type unop = Neg | Not

type expr = { e : expr_kind; epos : pos }

and expr_kind =
  | Int of int
  | Bool of bool
  | Null
  | This
  | Ident of string (* local, field of this, static field, or class name *)
  | Field of expr * string (* e.f; also e.length for arrays *)
  | Index of expr * expr
  | Call of expr option * string * expr list
      (* receiver (None = unqualified: this-call or static in same class) *)
  | New of string * expr list
  | NewArray of ty * expr list (* element type, one length per dimension *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

type lvalue =
  | LIdent of string
  | LField of expr * string
  | LIndex of expr * expr

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | Decl of ty * string * expr option
  | Assign of lvalue * expr
  | Expr of expr (* call for effect *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Sync of expr * stmt list (* synchronized (e) { ... } *)
  | Print of string * expr option (* print("tag", e?) *)
  | Break
  | Continue

type mdecl = {
  m_name : string;
  m_static : bool;
  m_sync : bool;
  m_ret : ty;
  m_params : (ty * string) list;
  m_body : stmt list;
  m_pos : pos;
}

type fdecl = { f_name : string; f_static : bool; f_ty : ty; f_pos : pos }

type cdecl = {
  c_name : string;
  c_super : string option; (* None = Object *)
  c_fields : fdecl list;
  c_methods : mdecl list;
  c_ctors : mdecl list; (* constructors: m_name = class name, m_ret = Tvoid *)
  c_pos : pos;
}

type program = cdecl list

(* Names of the built-in root classes. *)
let object_class = "Object"
let thread_class = "Thread"
