(** Typechecker and name resolver: turns a parsed {!Ast.program} into a
    {!Tast.tprogram} with every identifier resolved and every expression
    annotated with its type.

    The checked language is a Java subset: single inheritance rooted at
    the built-in [Object]; the built-in [Thread] class whose subclasses
    override [run()] and whose instances support [start()] and [join()];
    no method overloading (one method per name per class); at most one
    constructor per class and no [super(...)] chaining (superclass
    fields start at their default values). *)

exception Error of string * Ast.pos

val check : Ast.program -> Tast.tprogram
(** Check a program.  The program must define exactly one
    [static void main()].  Raises {!Error} otherwise. *)
