open Ast
open Token

exception Error of string * Ast.pos

type st = { toks : Token.t array; mutable i : int }

let peek st = st.toks.(st.i)
let peek_kind st = (peek st).kind

let peek2_kind st =
  if st.i + 1 < Array.length st.toks then st.toks.(st.i + 1).kind else EOF

let peek3_kind st =
  if st.i + 2 < Array.length st.toks then st.toks.(st.i + 2).kind else EOF

let advance st =
  let t = peek st in
  if t.kind <> EOF then st.i <- st.i + 1;
  t

let err st msg = raise (Error (msg, (peek st).pos))

let expect st kind =
  let t = peek st in
  if t.kind = kind then advance st
  else
    err st
      (Printf.sprintf "expected %s but found %s" (describe kind)
         (describe t.kind))

let accept st kind =
  if peek_kind st = kind then begin
    ignore (advance st);
    true
  end
  else false

let expect_ident st =
  match peek_kind st with
  | IDENT name ->
      ignore (advance st);
      name
  | k -> err st (Printf.sprintf "expected identifier but found %s" (describe k))

(* ---- types ---- *)

let rec parse_array_suffix st ty =
  if peek_kind st = LBRACKET && peek2_kind st = RBRACKET then begin
    ignore (advance st);
    ignore (advance st);
    parse_array_suffix st (Tarray ty)
  end
  else ty

let parse_base_ty st =
  match peek_kind st with
  | KW_INT ->
      ignore (advance st);
      Tint
  | KW_BOOLEAN ->
      ignore (advance st);
      Tbool
  | IDENT name ->
      ignore (advance st);
      Tclass name
  | k -> err st (Printf.sprintf "expected a type but found %s" (describe k))

let parse_ty st = parse_array_suffix st (parse_base_ty st)

(* A declaration starts with a type followed by an identifier.  The
   tricky case is [IDENT ...]: it is a declaration iff followed by an
   identifier, or by "[]" (array type). *)
let starts_decl st =
  match peek_kind st with
  | KW_INT | KW_BOOLEAN -> true
  | IDENT _ -> (
      match peek2_kind st with
      | IDENT _ -> true
      | LBRACKET -> peek3_kind st = RBRACKET
      | _ -> false)
  | _ -> false

(* ---- expressions ---- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek_kind st = OROR do
    let pos = (advance st).pos in
    let rhs = parse_and st in
    lhs := { e = Binop (Or, !lhs, rhs); epos = pos }
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_eq st) in
  while peek_kind st = ANDAND do
    let pos = (advance st).pos in
    let rhs = parse_eq st in
    lhs := { e = Binop (And, !lhs, rhs); epos = pos }
  done;
  !lhs

and parse_eq st =
  let lhs = ref (parse_rel st) in
  let rec go () =
    match peek_kind st with
    | EQ | NE ->
        let t = advance st in
        let op = if t.kind = EQ then Ast.Eq else Ast.Ne in
        let rhs = parse_rel st in
        lhs := { e = Binop (op, !lhs, rhs); epos = t.pos };
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_rel st =
  let lhs = ref (parse_add st) in
  let rec go () =
    match peek_kind st with
    | LT | LE | GT | GE ->
        let t = advance st in
        let op =
          match t.kind with
          | LT -> Ast.Lt
          | LE -> Ast.Le
          | GT -> Ast.Gt
          | _ -> Ast.Ge
        in
        let rhs = parse_add st in
        lhs := { e = Binop (op, !lhs, rhs); epos = t.pos };
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec go () =
    match peek_kind st with
    | PLUS | MINUS ->
        let t = advance st in
        let op = if t.kind = PLUS then Ast.Add else Ast.Sub in
        let rhs = parse_mul st in
        lhs := { e = Binop (op, !lhs, rhs); epos = t.pos };
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek_kind st with
    | STAR | SLASH | PERCENT ->
        let t = advance st in
        let op =
          match t.kind with
          | STAR -> Ast.Mul
          | SLASH -> Ast.Div
          | _ -> Ast.Mod
        in
        let rhs = parse_unary st in
        lhs := { e = Binop (op, !lhs, rhs); epos = t.pos };
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek_kind st with
  | MINUS ->
      let t = advance st in
      { e = Unop (Neg, parse_unary st); epos = t.pos }
  | BANG ->
      let t = advance st in
      { e = Unop (Not, parse_unary st); epos = t.pos }
  | _ -> parse_postfix st

and parse_postfix st =
  let prim = parse_primary st in
  parse_postfix_chain st prim

and parse_postfix_chain st recv =
  match peek_kind st with
  | DOT -> (
      ignore (advance st);
      let name = expect_ident st in
      match peek_kind st with
      | LPAREN ->
          let args = parse_args st in
          parse_postfix_chain st
            { e = Call (Some recv, name, args); epos = recv.epos }
      | _ -> parse_postfix_chain st { e = Field (recv, name); epos = recv.epos })
  | LBRACKET ->
      ignore (advance st);
      let idx = parse_expr st in
      ignore (expect st RBRACKET);
      parse_postfix_chain st { e = Index (recv, idx); epos = recv.epos }
  | _ -> recv

and parse_args st =
  ignore (expect st LPAREN);
  if accept st RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if accept st COMMA then go (e :: acc)
      else begin
        ignore (expect st RPAREN);
        List.rev (e :: acc)
      end
    in
    go []

and parse_primary st =
  let t = peek st in
  match t.kind with
  | INT n ->
      ignore (advance st);
      { e = Int n; epos = t.pos }
  | KW_TRUE ->
      ignore (advance st);
      { e = Bool true; epos = t.pos }
  | KW_FALSE ->
      ignore (advance st);
      { e = Bool false; epos = t.pos }
  | KW_NULL ->
      ignore (advance st);
      { e = Null; epos = t.pos }
  | KW_THIS ->
      ignore (advance st);
      { e = This; epos = t.pos }
  | LPAREN ->
      ignore (advance st);
      let e = parse_expr st in
      ignore (expect st RPAREN);
      e
  | KW_NEW -> parse_new st
  | IDENT name -> (
      ignore (advance st);
      match peek_kind st with
      | LPAREN ->
          let args = parse_args st in
          { e = Call (None, name, args); epos = t.pos }
      | _ -> { e = Ident name; epos = t.pos })
  | k -> err st (Printf.sprintf "expected an expression but found %s" (describe k))

and parse_new st =
  let t = expect st KW_NEW in
  match peek_kind st with
  | IDENT name when peek2_kind st = LPAREN ->
      ignore (advance st);
      let args = parse_args st in
      { e = New (name, args); epos = t.pos }
  | _ ->
      let base = parse_base_ty st in
      let rec dims acc =
        if peek_kind st = LBRACKET then begin
          ignore (advance st);
          let d = parse_expr st in
          ignore (expect st RBRACKET);
          dims (d :: acc)
        end
        else List.rev acc
      in
      let ds = dims [] in
      if ds = [] then err st "array creation requires at least one dimension";
      { e = NewArray (base, ds); epos = t.pos }

(* ---- statements ---- *)

let lvalue_of_expr st (e : expr) =
  match e.e with
  | Ident x -> LIdent x
  | Field (r, f) -> LField (r, f)
  | Index (a, i) -> LIndex (a, i)
  | _ -> err st "invalid assignment target"

let rec parse_block st =
  ignore (expect st LBRACE);
  let rec go acc =
    if accept st RBRACE then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  let t = peek st in
  match t.kind with
  | KW_IF ->
      ignore (advance st);
      ignore (expect st LPAREN);
      let cond = parse_expr st in
      ignore (expect st RPAREN);
      let thn = parse_block st in
      let els =
        if accept st KW_ELSE then
          if peek_kind st = KW_IF then [ parse_stmt st ] else parse_block st
        else []
      in
      { s = If (cond, thn, els); spos = t.pos }
  | KW_WHILE ->
      ignore (advance st);
      ignore (expect st LPAREN);
      let cond = parse_expr st in
      ignore (expect st RPAREN);
      let body = parse_block st in
      { s = While (cond, body); spos = t.pos }
  | KW_FOR ->
      ignore (advance st);
      ignore (expect st LPAREN);
      let init =
        if peek_kind st = SEMI then begin
          ignore (advance st);
          None
        end
        else
          let s = parse_simple_stmt st in
          ignore (expect st SEMI);
          Some s
      in
      let cond =
        if peek_kind st = SEMI then None else Some (parse_expr st)
      in
      ignore (expect st SEMI);
      let update =
        if peek_kind st = RPAREN then None else Some (parse_simple_stmt st)
      in
      ignore (expect st RPAREN);
      let body = parse_block st in
      { s = For (init, cond, update, body); spos = t.pos }
  | KW_RETURN ->
      ignore (advance st);
      let e = if peek_kind st = SEMI then None else Some (parse_expr st) in
      ignore (expect st SEMI);
      { s = Return e; spos = t.pos }
  | KW_BREAK ->
      ignore (advance st);
      ignore (expect st SEMI);
      { s = Break; spos = t.pos }
  | KW_CONTINUE ->
      ignore (advance st);
      ignore (expect st SEMI);
      { s = Continue; spos = t.pos }
  | KW_SYNCHRONIZED ->
      ignore (advance st);
      ignore (expect st LPAREN);
      let e = parse_expr st in
      ignore (expect st RPAREN);
      let body = parse_block st in
      { s = Sync (e, body); spos = t.pos }
  | KW_PRINT ->
      ignore (advance st);
      ignore (expect st LPAREN);
      let tag, e =
        match peek_kind st with
        | STRING s ->
            ignore (advance st);
            if accept st COMMA then (s, Some (parse_expr st)) else (s, None)
        | _ -> ("", Some (parse_expr st))
      in
      ignore (expect st RPAREN);
      ignore (expect st SEMI);
      { s = Print (tag, e); spos = t.pos }
  | _ ->
      let s = parse_simple_stmt st in
      ignore (expect st SEMI);
      s

(* Declaration, assignment or call — the statement forms allowed in
   [for] headers (no trailing semicolon here). *)
and parse_simple_stmt st =
  let t = peek st in
  if starts_decl st then begin
    let ty = parse_ty st in
    let name = expect_ident st in
    let init = if accept st ASSIGN then Some (parse_expr st) else None in
    { s = Decl (ty, name, init); spos = t.pos }
  end
  else
    let e = parse_expr st in
    if accept st ASSIGN then
      let rhs = parse_expr st in
      { s = Assign (lvalue_of_expr st e, rhs); spos = t.pos }
    else
      match e.e with
      | Call _ -> { s = Expr e; spos = t.pos }
      | _ -> err st "expected a statement"

(* ---- declarations ---- *)

let rec parse_member st cname =
  let pos = (peek st).pos in
  let is_static = accept st KW_STATIC in
  let is_sync = accept st KW_SYNCHRONIZED in
  let is_static = is_static || accept st KW_STATIC in
  (* Constructor: ClassName ( ... ) *)
  match peek_kind st with
  | IDENT name when name = cname && peek2_kind st = LPAREN ->
      if is_static then err st "constructors cannot be static";
      ignore (advance st);
      let params = parse_params st in
      let body = parse_block st in
      `Ctor
        {
          m_name = name;
          m_static = false;
          m_sync = is_sync;
          m_ret = Tvoid;
          m_params = params;
          m_body = body;
          m_pos = pos;
        }
  | KW_VOID ->
      ignore (advance st);
      let name = expect_ident st in
      let params = parse_params st in
      let body = parse_block st in
      `Method
        {
          m_name = name;
          m_static = is_static;
          m_sync = is_sync;
          m_ret = Tvoid;
          m_params = params;
          m_body = body;
          m_pos = pos;
        }
  | _ ->
      let ty = parse_ty st in
      let name = expect_ident st in
      if peek_kind st = LPAREN then
        let params = parse_params st in
        let body = parse_block st in
        `Method
          {
            m_name = name;
            m_static = is_static;
            m_sync = is_sync;
            m_ret = ty;
            m_params = params;
            m_body = body;
            m_pos = pos;
          }
      else begin
        if is_sync then err st "fields cannot be synchronized";
        ignore (expect st SEMI);
        `Field { f_name = name; f_static = is_static; f_ty = ty; f_pos = pos }
      end

and parse_params st =
  ignore (expect st LPAREN);
  if accept st RPAREN then []
  else
    let rec go acc =
      let ty = parse_ty st in
      let name = expect_ident st in
      if accept st COMMA then go ((ty, name) :: acc)
      else begin
        ignore (expect st RPAREN);
        List.rev ((ty, name) :: acc)
      end
    in
    go []

let parse_class st =
  let t = expect st KW_CLASS in
  let name = expect_ident st in
  let super = if accept st KW_EXTENDS then Some (expect_ident st) else None in
  ignore (expect st LBRACE);
  let fields = ref [] and methods = ref [] and ctors = ref [] in
  while not (accept st RBRACE) do
    match parse_member st name with
    | `Field f -> fields := f :: !fields
    | `Method m -> methods := m :: !methods
    | `Ctor c -> ctors := c :: !ctors
  done;
  {
    c_name = name;
    c_super = super;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
    c_ctors = List.rev !ctors;
    c_pos = t.pos;
  }

let parse_program source =
  let st = { toks = Array.of_list (Lexer.tokenize source); i = 0 } in
  let rec go acc =
    if peek_kind st = EOF then List.rev acc else go (parse_class st :: acc)
  in
  go []

let parse_expr_string source =
  let st = { toks = Array.of_list (Lexer.tokenize source); i = 0 } in
  let e = parse_expr st in
  ignore (expect st EOF);
  e
