open Ast
open Tast

exception Error of string * Ast.pos

let err pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

(* The type of the [null] literal: assignable to any reference type. *)
let null_ty = Tclass "<null>"
let is_null_ty t = t = null_ty

let is_ref_ty = function Tclass _ | Tarray _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Pass 1: class table, field layouts, vtables, method signatures.      *)

let builtin_classes =
  [
    {
      c_name = object_class;
      c_super = None;
      c_fields = [];
      c_methods = [];
      c_ctors = [];
      c_pos = dummy_pos;
    };
    {
      c_name = thread_class;
      c_super = Some object_class;
      c_fields = [];
      c_methods =
        [
          {
            m_name = "run";
            m_static = false;
            m_sync = false;
            m_ret = Tvoid;
            m_params = [];
            m_body = [];
            m_pos = dummy_pos;
          };
        ];
      c_ctors = [];
      c_pos = dummy_pos;
    };
  ]

type builder = {
  decls : (string, cdecl) Hashtbl.t;
  classes : (string, class_info) Hashtbl.t;
  methods : (string, tmethod) Hashtbl.t;
  mutable statics : sfield_info list; (* reverse slot order *)
  mutable nstatics : int;
}

let check_ty b pos ty =
  let rec go = function
    | Tint | Tbool | Tvoid -> ()
    | Tclass c ->
        if not (Hashtbl.mem b.decls c) then err pos "unknown class %s" c
    | Tarray t -> go t
  in
  go ty

let rec build_class b (d : cdecl) : class_info =
  match Hashtbl.find_opt b.classes d.c_name with
  | Some ci -> ci
  | None ->
      let super_info =
        match d.c_super with
        | None ->
            if d.c_name = object_class then None
            else Some (build_class_by_name b d.c_pos object_class)
        | Some s -> (
            if s = d.c_name then err d.c_pos "class %s extends itself" s;
            match Hashtbl.find_opt b.decls s with
            | None -> err d.c_pos "unknown superclass %s of %s" s d.c_name
            | Some sd -> Some (build_class b sd))
      in
      let inherited_fields =
        match super_info with Some s -> Array.to_list s.cls_fields | None -> []
      in
      let instance_fields =
        List.filter (fun f -> not f.f_static) d.c_fields
      in
      List.iter
        (fun (f : fdecl) ->
          check_ty b f.f_pos f.f_ty;
          if f.f_ty = Tvoid then err f.f_pos "field %s has type void" f.f_name)
        d.c_fields;
      (* Reject duplicate field names within the class (shadowing a
         superclass field is also rejected to keep resolution simple). *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (f : fdecl) ->
          if Hashtbl.mem seen f.f_name then
            err f.f_pos "duplicate field %s in class %s" f.f_name d.c_name;
          Hashtbl.add seen f.f_name ())
        d.c_fields;
      List.iter
        (fun (fi : field_info) ->
          if Hashtbl.mem seen fi.fld_name then
            err d.c_pos "field %s of %s shadows a superclass field" fi.fld_name
              d.c_name)
        inherited_fields;
      let own_fields =
        List.mapi
          (fun i (f : fdecl) ->
            {
              fld_owner = d.c_name;
              fld_name = f.f_name;
              fld_ty = f.f_ty;
              fld_index = List.length inherited_fields + i;
            })
          instance_fields
      in
      (* Static fields get global slots. *)
      List.iter
        (fun (f : fdecl) ->
          if f.f_static then begin
            b.statics <-
              {
                sf_class = d.c_name;
                sf_name = f.f_name;
                sf_ty = f.f_ty;
                sf_slot = b.nstatics;
              }
              :: b.statics;
            b.nstatics <- b.nstatics + 1
          end)
        d.c_fields;
      (* vtable: superclass entries overridden by own instance methods. *)
      let super_vtable =
        match super_info with Some s -> s.cls_vtable | None -> []
      in
      let own_methods = List.filter (fun m -> not m.m_static) d.c_methods in
      let vtable =
        List.fold_left
          (fun vt (m : mdecl) ->
            (m.m_name, d.c_name) :: List.remove_assoc m.m_name vt)
          super_vtable own_methods
      in
      let is_thread =
        d.c_name = thread_class
        || match super_info with Some s -> s.cls_is_thread | None -> false
      in
      let ci =
        {
          cls_name = d.c_name;
          cls_super = (match super_info with Some s -> Some s.cls_name | None -> None);
          cls_fields = Array.of_list (inherited_fields @ own_fields);
          cls_vtable = vtable;
          cls_is_thread = is_thread;
          cls_pos = d.c_pos;
        }
      in
      Hashtbl.add b.classes d.c_name ci;
      ci

and build_class_by_name b pos name =
  match Hashtbl.find_opt b.decls name with
  | Some d -> build_class b d
  | None -> err pos "unknown class %s" name

(* Register the signature of a method (body checked in pass 2). *)
let register_method b cls (m : mdecl) ~is_ctor =
  let name = if is_ctor then "<init>" else m.m_name in
  let key = method_key cls name in
  if Hashtbl.mem b.methods key then
    err m.m_pos "duplicate method %s in class %s (no overloading)" m.m_name cls;
  List.iter (fun (ty, _) -> check_ty b m.m_pos ty) m.m_params;
  check_ty b m.m_pos m.m_ret;
  List.iter
    (fun (ty, p) ->
      if ty = Tvoid then err m.m_pos "parameter %s has type void" p)
    m.m_params;
  Hashtbl.add b.methods key
    {
      tm_class = cls;
      tm_name = name;
      tm_static = m.m_static;
      tm_sync = m.m_sync;
      tm_ret = m.m_ret;
      tm_param_tys = List.map fst m.m_params;
      tm_nslots = 0;
      tm_body = [];
      tm_pos = m.m_pos;
      tm_is_ctor = is_ctor;
    }

(* ------------------------------------------------------------------ *)
(* Pass 2: method bodies.                                               *)

type env = {
  b : builder;
  cls : class_info; (* current class *)
  meth : tmethod; (* signature of the method being checked *)
  mutable scopes : (string * (int * ty)) list list;
  mutable nslots : int;
  mutable loop_depth : int;
}

let prog_view b =
  (* A tprogram view over the builder for subtype queries. *)
  {
    classes = b.classes;
    methods = b.methods;
    statics = [||];
    main_class = "";
  }

let assignable b from_ty to_ty =
  match (from_ty, to_ty) with
  | Tint, Tint | Tbool, Tbool -> true
  | t, (Tclass _ | Tarray _) when is_null_ty t -> true
  | Tclass a, Tclass c -> is_subclass (prog_view b) a c
  | Tarray a, Tarray c -> a = c (* arrays are invariant *)
  | _ -> false

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some v -> Some v
        | None -> go rest)
  in
  go env.scopes

let add_local env pos name ty =
  (match env.scopes with
  | scope :: _ when List.mem_assoc name scope ->
      err pos "variable %s already declared in this scope" name
  | _ -> ());
  let slot = env.nslots in
  env.nslots <- env.nslots + 1;
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((name, (slot, ty)) :: scope) :: rest
  | [] -> assert false);
  slot

let rec find_field b cls name =
  match Hashtbl.find_opt b.classes cls with
  | None -> None
  | Some ci -> (
      match
        Array.to_seq ci.cls_fields
        |> Seq.filter (fun f -> f.fld_name = name)
        |> Seq.uncons
      with
      | Some (f, _) -> Some f
      | None -> (
          match ci.cls_super with
          | Some s -> find_field b s name
          | None -> None))

let rec find_static b cls name =
  match
    List.find_opt (fun sf -> sf.sf_class = cls && sf.sf_name = name) b.statics
  with
  | Some sf -> Some sf
  | None -> (
      match Hashtbl.find_opt b.classes cls with
      | Some { cls_super = Some s; _ } -> find_static b s name
      | _ -> None)

(* Find an instance method signature along the superclass chain. *)
let rec find_instance_method b cls name =
  match Hashtbl.find_opt b.methods (method_key cls name) with
  | Some m when not m.tm_static -> Some m
  | _ -> (
      match Hashtbl.find_opt b.classes cls with
      | Some { cls_super = Some s; _ } -> find_instance_method b s name
      | _ -> None)

let rec find_static_method b cls name =
  match Hashtbl.find_opt b.methods (method_key cls name) with
  | Some m when m.tm_static -> Some m
  | _ -> (
      match Hashtbl.find_opt b.classes cls with
      | Some { cls_super = Some s; _ } -> find_static_method b s name
      | _ -> None)

let is_class_name env name =
  Hashtbl.mem env.b.classes name && lookup_local env name = None

let is_thread_class env name =
  match Hashtbl.find_opt env.b.classes name with
  | Some ci -> ci.cls_is_thread
  | None -> false

let rec check_expr env (e : expr) : texpr =
  let pos = e.epos in
  match e.e with
  | Int n -> { te = TInt n; tty = Tint; tepos = pos }
  | Bool v -> { te = TBool v; tty = Tbool; tepos = pos }
  | Null -> { te = TNull; tty = null_ty; tepos = pos }
  | This ->
      if env.meth.tm_static then err pos "this used in a static method";
      { te = TThis; tty = Tclass env.cls.cls_name; tepos = pos }
  | Ident name -> (
      match lookup_local env name with
      | Some (slot, ty) -> { te = TLocal slot; tty = ty; tepos = pos }
      | None -> (
          match
            if env.meth.tm_static then None
            else find_field env.b env.cls.cls_name name
          with
          | Some fi ->
              {
                te =
                  TGetField
                    ( { te = TThis; tty = Tclass env.cls.cls_name; tepos = pos },
                      fi );
                tty = fi.fld_ty;
                tepos = pos;
              }
          | None -> (
              match find_static env.b env.cls.cls_name name with
              | Some sf -> { te = TGetStatic sf; tty = sf.sf_ty; tepos = pos }
              | None -> err pos "unknown variable %s" name)))
  | Field (recv, fname) -> (
      match recv.e with
      | Ident cname when is_class_name env cname -> (
          match find_static env.b cname fname with
          | Some sf -> { te = TGetStatic sf; tty = sf.sf_ty; tepos = pos }
          | None -> err pos "unknown static field %s.%s" cname fname)
      | _ -> (
          let trecv = check_expr env recv in
          match trecv.tty with
          | Tarray _ when fname = "length" ->
              { te = TLen trecv; tty = Tint; tepos = pos }
          | Tclass cname -> (
              match find_field env.b cname fname with
              | Some fi ->
                  { te = TGetField (trecv, fi); tty = fi.fld_ty; tepos = pos }
              | None -> err pos "unknown field %s of class %s" fname cname)
          | t -> err pos "field access on non-object of type %a" pp_ty t))
  | Index (arr, idx) -> (
      let tarr = check_expr env arr in
      let tidx = check_expr env idx in
      if tidx.tty <> Tint then err idx.epos "array index must be int";
      match tarr.tty with
      | Tarray elem -> { te = TIndex (tarr, tidx); tty = elem; tepos = pos }
      | t -> err arr.epos "indexing a non-array of type %a" pp_ty t)
  | Call (recv, name, args) -> check_call env pos recv name args
  | New (cname, args) -> (
      if not (Hashtbl.mem env.b.classes cname) then
        err pos "unknown class %s" cname;
      let targs = List.map (check_expr env) args in
      match Hashtbl.find_opt env.b.methods (method_key cname "<init>") with
      | Some ctor ->
          check_args env pos (cname ^ " constructor") ctor.tm_param_tys targs;
          { te = TNew (cname, targs); tty = Tclass cname; tepos = pos }
      | None ->
          if args <> [] then
            err pos "class %s has no constructor but arguments were given"
              cname;
          { te = TNew (cname, []); tty = Tclass cname; tepos = pos })
  | NewArray (base, dims) ->
      check_ty env.b pos base;
      if base = Tvoid then err pos "array of void";
      let tdims =
        List.map
          (fun d ->
            let td = check_expr env d in
            if td.tty <> Tint then err d.epos "array dimension must be int";
            td)
          dims
      in
      let ty =
        List.fold_left (fun acc _ -> Tarray acc) base tdims
      in
      { te = TNewArray (base, tdims); tty = ty; tepos = pos }
  | Binop (op, l, r) -> (
      let tl = check_expr env l and tr = check_expr env r in
      let ity t = if t <> Tint then err pos "operand must be int" in
      let bty t = if t <> Tbool then err pos "operand must be boolean" in
      match op with
      | Add | Sub | Mul | Div | Mod ->
          ity tl.tty;
          ity tr.tty;
          { te = TBinop (op, tl, tr); tty = Tint; tepos = pos }
      | Lt | Le | Gt | Ge ->
          ity tl.tty;
          ity tr.tty;
          { te = TBinop (op, tl, tr); tty = Tbool; tepos = pos }
      | Eq | Ne ->
          let ok =
            (tl.tty = Tint && tr.tty = Tint)
            || (tl.tty = Tbool && tr.tty = Tbool)
            || (is_ref_ty tl.tty || is_null_ty tl.tty)
               && (is_ref_ty tr.tty || is_null_ty tr.tty)
               && (assignable env.b tl.tty tr.tty
                  || assignable env.b tr.tty tl.tty
                  || is_null_ty tl.tty || is_null_ty tr.tty)
          in
          if not ok then
            err pos "incomparable types %a and %a" pp_ty tl.tty pp_ty tr.tty;
          { te = TBinop (op, tl, tr); tty = Tbool; tepos = pos }
      | And | Or ->
          bty tl.tty;
          bty tr.tty;
          { te = TBinop (op, tl, tr); tty = Tbool; tepos = pos })
  | Unop (op, e1) -> (
      let te1 = check_expr env e1 in
      match op with
      | Neg ->
          if te1.tty <> Tint then err pos "negation of non-int";
          { te = TUnop (Neg, te1); tty = Tint; tepos = pos }
      | Not ->
          if te1.tty <> Tbool then err pos "logical not of non-boolean";
          { te = TUnop (Not, te1); tty = Tbool; tepos = pos })

and check_args env pos what param_tys targs =
  if List.length param_tys <> List.length targs then
    err pos "%s expects %d arguments, got %d" what (List.length param_tys)
      (List.length targs);
  List.iter2
    (fun pty (ta : texpr) ->
      if not (assignable env.b ta.tty pty) then
        err ta.tepos "%s: argument of type %a where %a expected" what pp_ty
          ta.tty pp_ty pty)
    param_tys targs

and check_call env pos recv name args =
  let targs () = List.map (check_expr env) args in
  match recv with
  | Some { e = Ident cname; _ } when is_class_name env cname -> (
      (* Static call, including the Thread.yield() scheduling hint. *)
      if cname = thread_class && name = "yield" then begin
        if args <> [] then err pos "Thread.yield takes no arguments";
        { te = TCall CYield; tty = Tvoid; tepos = pos }
      end
      else
        match find_static_method env.b cname name with
        | Some m ->
            let ta = targs () in
            check_args env pos (cname ^ "." ^ name) m.tm_param_tys ta;
            {
              te = TCall (CStatic (m.tm_class, name, ta, m.tm_ret));
              tty = m.tm_ret;
              tepos = pos;
            }
        | None -> err pos "unknown static method %s.%s" cname name)
  | Some recv -> (
      let trecv = check_expr env recv in
      match trecv.tty with
      | Tclass cname -> (
          match name with
          | "start" when is_thread_class env cname ->
              if args <> [] then err pos "start takes no arguments";
              { te = TCall (CStart trecv); tty = Tvoid; tepos = pos }
          | "join" when is_thread_class env cname ->
              if args <> [] then err pos "join takes no arguments";
              { te = TCall (CJoin trecv); tty = Tvoid; tepos = pos }
          | "wait" when find_instance_method env.b cname "wait" = None ->
              if args <> [] then err pos "wait takes no arguments";
              { te = TCall (CWait trecv); tty = Tvoid; tepos = pos }
          | "notify" when find_instance_method env.b cname "notify" = None ->
              if args <> [] then err pos "notify takes no arguments";
              { te = TCall (CNotify trecv); tty = Tvoid; tepos = pos }
          | "notifyAll" when find_instance_method env.b cname "notifyAll" = None ->
              if args <> [] then err pos "notifyAll takes no arguments";
              { te = TCall (CNotifyAll trecv); tty = Tvoid; tepos = pos }
          | _ -> (
              match find_instance_method env.b cname name with
              | Some m ->
                  let ta = targs () in
                  check_args env pos (cname ^ "." ^ name) m.tm_param_tys ta;
                  {
                    te = TCall (CVirtual (trecv, name, ta, m.tm_ret));
                    tty = m.tm_ret;
                    tepos = pos;
                  }
              | None -> err pos "unknown method %s of class %s" name cname))
      | t -> err pos "method call on non-object of type %a" pp_ty t)
  | None -> (
      (* Unqualified call: instance method of the current class (via
         this) or a static method of the current class. *)
      match
        if env.meth.tm_static then None
        else find_instance_method env.b env.cls.cls_name name
      with
      | Some m ->
          let ta = targs () in
          check_args env pos name m.tm_param_tys ta;
          let this =
            { te = TThis; tty = Tclass env.cls.cls_name; tepos = pos }
          in
          {
            te = TCall (CVirtual (this, name, ta, m.tm_ret));
            tty = m.tm_ret;
            tepos = pos;
          }
      | None -> (
          match find_static_method env.b env.cls.cls_name name with
          | Some m ->
              let ta = targs () in
              check_args env pos name m.tm_param_tys ta;
              {
                te = TCall (CStatic (m.tm_class, name, ta, m.tm_ret));
                tty = m.tm_ret;
                tepos = pos;
              }
          | None -> err pos "unknown method %s" name))

let rec check_stmt env (s : stmt) : tstmt =
  let pos = s.spos in
  match s.s with
  | Decl (ty, name, init) ->
      check_ty env.b pos ty;
      if ty = Tvoid then err pos "variable %s has type void" name;
      let tinit =
        Option.map
          (fun e ->
            let te = check_expr env e in
            if not (assignable env.b te.tty ty) then
              err e.epos "cannot initialize %a variable %s with %a" pp_ty ty
                name pp_ty te.tty;
            te)
          init
      in
      let slot = add_local env pos name ty in
      { ts = TDecl (slot, ty, tinit); tspos = pos }
  | Assign (lv, rhs) -> (
      let trhs = check_expr env rhs in
      let ensure ty =
        if not (assignable env.b trhs.tty ty) then
          err pos "cannot assign %a to %a" pp_ty trhs.tty pp_ty ty
      in
      match lv with
      | LIdent name -> (
          match lookup_local env name with
          | Some (slot, ty) ->
              ensure ty;
              { ts = TAssignLocal (slot, trhs); tspos = pos }
          | None -> (
              match
                if env.meth.tm_static then None
                else find_field env.b env.cls.cls_name name
              with
              | Some fi ->
                  ensure fi.fld_ty;
                  let this =
                    { te = TThis; tty = Tclass env.cls.cls_name; tepos = pos }
                  in
                  { ts = TSetField (this, fi, trhs); tspos = pos }
              | None -> (
                  match find_static env.b env.cls.cls_name name with
                  | Some sf ->
                      ensure sf.sf_ty;
                      { ts = TSetStatic (sf, trhs); tspos = pos }
                  | None -> err pos "unknown variable %s" name)))
      | LField (recv, fname) -> (
          match recv.e with
          | Ident cname when is_class_name env cname -> (
              match find_static env.b cname fname with
              | Some sf ->
                  ensure sf.sf_ty;
                  { ts = TSetStatic (sf, trhs); tspos = pos }
              | None -> err pos "unknown static field %s.%s" cname fname)
          | _ -> (
              let trecv = check_expr env recv in
              match trecv.tty with
              | Tclass cname -> (
                  match find_field env.b cname fname with
                  | Some fi ->
                      ensure fi.fld_ty;
                      { ts = TSetField (trecv, fi, trhs); tspos = pos }
                  | None -> err pos "unknown field %s of %s" fname cname)
              | t -> err pos "field assignment on non-object %a" pp_ty t))
      | LIndex (arr, idx) -> (
          let tarr = check_expr env arr in
          let tidx = check_expr env idx in
          if tidx.tty <> Tint then err idx.epos "array index must be int";
          match tarr.tty with
          | Tarray elem ->
              ensure elem;
              { ts = TSetIndex (tarr, tidx, trhs); tspos = pos }
          | t -> err arr.epos "indexing a non-array of type %a" pp_ty t))
  | Expr e -> (
      let te = check_expr env e in
      match te.te with
      | TCall _ -> { ts = TExpr te; tspos = pos }
      | _ -> err pos "expression statement must be a call")
  | If (cond, thn, els) ->
      let tc = check_cond env cond in
      let tthn = check_scoped_block env thn in
      let tels = check_scoped_block env els in
      { ts = TIf (tc, tthn, tels); tspos = pos }
  | While (cond, body) ->
      let tc = check_cond env cond in
      env.loop_depth <- env.loop_depth + 1;
      let tbody = check_scoped_block env body in
      env.loop_depth <- env.loop_depth - 1;
      { ts = TWhile (tc, tbody); tspos = pos }
  | For (init, cond, update, body) ->
      env.scopes <- [] :: env.scopes;
      let tinit = Option.map (check_stmt env) init in
      let tcond = Option.map (check_cond env) cond in
      env.loop_depth <- env.loop_depth + 1;
      let tbody = check_scoped_block env body in
      let tupdate = Option.map (check_stmt env) update in
      env.loop_depth <- env.loop_depth - 1;
      env.scopes <- List.tl env.scopes;
      { ts = TFor (tinit, tcond, tupdate, tbody); tspos = pos }
  | Return e -> (
      match (e, env.meth.tm_ret) with
      | None, Tvoid -> { ts = TReturn None; tspos = pos }
      | None, t -> err pos "missing return value of type %a" pp_ty t
      | Some _, Tvoid -> err pos "void method returns a value"
      | Some e, t ->
          let te = check_expr env e in
          if not (assignable env.b te.tty t) then
            err pos "returning %a where %a expected" pp_ty te.tty pp_ty t;
          { ts = TReturn (Some te); tspos = pos })
  | Sync (e, body) ->
      let te = check_expr env e in
      if not (is_ref_ty te.tty) then
        err e.epos "synchronized requires an object, got %a" pp_ty te.tty;
      let tbody = check_scoped_block env body in
      { ts = TSync (te, tbody); tspos = pos }
  | Print (tag, e) ->
      let te =
        Option.map
          (fun e ->
            let te = check_expr env e in
            if te.tty <> Tint && te.tty <> Tbool then
              err e.epos "print expects an int or boolean";
            te)
          e
      in
      { ts = TPrint (tag, te); tspos = pos }
  | Break ->
      if env.loop_depth = 0 then err pos "break outside a loop";
      { ts = TBreak; tspos = pos }
  | Continue ->
      if env.loop_depth = 0 then err pos "continue outside a loop";
      { ts = TContinue; tspos = pos }

and check_cond env e =
  let te = check_expr env e in
  if te.tty <> Tbool then err e.epos "condition must be boolean";
  te

and check_scoped_block env stmts =
  env.scopes <- [] :: env.scopes;
  let ts = List.map (check_stmt env) stmts in
  env.scopes <- List.tl env.scopes;
  ts

let check_method_body b cls (m : mdecl) ~is_ctor =
  let name = if is_ctor then "<init>" else m.m_name in
  let key = method_key cls.cls_name name in
  let sign = Hashtbl.find b.methods key in
  let env =
    {
      b;
      cls;
      meth = sign;
      scopes = [ [] ];
      nslots = 0;
      loop_depth = 0;
    }
  in
  (* Slot 0 is [this] for instance methods. *)
  if not m.m_static then env.nslots <- 1;
  List.iter (fun (ty, pname) -> ignore (add_local env m.m_pos pname ty)) m.m_params;
  let body = List.map (check_stmt env) m.m_body in
  Hashtbl.replace b.methods key
    { sign with tm_body = body; tm_nslots = env.nslots }

(* Overriding must preserve the signature. *)
let check_overrides b =
  Hashtbl.iter
    (fun _ ci ->
      match ci.cls_super with
      | None -> ()
      | Some super ->
          List.iter
            (fun (name, impl) ->
              if impl = ci.cls_name then
                match find_instance_method b super name with
                | Some sm ->
                    let own =
                      Hashtbl.find b.methods (method_key ci.cls_name name)
                    in
                    if
                      own.tm_param_tys <> sm.tm_param_tys
                      || own.tm_ret <> sm.tm_ret
                    then
                      err own.tm_pos
                        "method %s.%s overrides %s.%s with a different \
                         signature"
                        ci.cls_name name sm.tm_class name
                | None -> ())
            ci.cls_vtable)
    b.classes

let check (prog : Ast.program) : tprogram =
  let b =
    {
      decls = Hashtbl.create 64;
      classes = Hashtbl.create 64;
      methods = Hashtbl.create 256;
      statics = [];
      nstatics = 0;
    }
  in
  let all = builtin_classes @ prog in
  List.iter
    (fun (d : cdecl) ->
      if Hashtbl.mem b.decls d.c_name then
        err d.c_pos "duplicate class %s" d.c_name;
      if d.c_name = "<null>" then err d.c_pos "reserved class name";
      Hashtbl.add b.decls d.c_name d)
    all;
  (* Pass 1: build class infos (recursion handles supers first). *)
  List.iter (fun d -> ignore (build_class b d)) all;
  (* Register signatures. *)
  List.iter
    (fun (d : cdecl) ->
      List.iter (fun m -> register_method b d.c_name m ~is_ctor:false) d.c_methods;
      (match d.c_ctors with
      | [] -> ()
      | [ c ] -> register_method b d.c_name c ~is_ctor:true
      | _ :: c :: _ ->
          err c.m_pos "class %s has multiple constructors (no overloading)"
            d.c_name);
      ())
    all;
  check_overrides b;
  (* Pass 2: check bodies. *)
  List.iter
    (fun (d : cdecl) ->
      let ci = Hashtbl.find b.classes d.c_name in
      List.iter (fun m -> check_method_body b ci m ~is_ctor:false) d.c_methods;
      List.iter (fun c -> check_method_body b ci c ~is_ctor:true) d.c_ctors)
    all;
  (* Locate main. *)
  let mains =
    Hashtbl.fold
      (fun _ m acc ->
        if m.tm_name = "main" && m.tm_static && m.tm_param_tys = [] then
          m :: acc
        else acc)
      b.methods []
  in
  let main_class =
    match mains with
    | [ m ] ->
        if m.tm_ret <> Tvoid then
          err m.tm_pos "main must return void";
        m.tm_class
    | [] -> err dummy_pos "no static void main() found"
    | m :: _ -> err m.tm_pos "multiple static void main() methods"
  in
  let statics = Array.make b.nstatics None in
  List.iter (fun sf -> statics.(sf.sf_slot) <- Some sf) b.statics;
  {
    classes = b.classes;
    methods = b.methods;
    statics = Array.map Option.get statics;
    main_class;
  }
