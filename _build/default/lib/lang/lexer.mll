{
(* Lexer for MiniJava.  Produces [Token.t] values; tracks line/column
   positions for error messages and race-report sites. *)

open Token

exception Error of string * Ast.pos

let pos_of lexbuf =
  let p = Lexing.lexeme_start_p lexbuf in
  { Ast.line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1 }

let keywords =
  [
    ("class", KW_CLASS);
    ("extends", KW_EXTENDS);
    ("static", KW_STATIC);
    ("synchronized", KW_SYNCHRONIZED);
    ("void", KW_VOID);
    ("int", KW_INT);
    ("boolean", KW_BOOLEAN);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("for", KW_FOR);
    ("return", KW_RETURN);
    ("new", KW_NEW);
    ("null", KW_NULL);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("this", KW_THIS);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("print", KW_PRINT);
  ]

let kind_of_word w =
  match List.assoc_opt w keywords with Some k -> k | None -> IDENT w
}

let digit = ['0'-'9']
let alpha = ['a'-'z' 'A'-'Z' '_']
let ident = alpha (alpha | digit)*
let ws = [' ' '\t' '\r']

rule token = parse
  | ws+            { token lexbuf }
  | '\n'           { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']* { token lexbuf }
  | "/*"           { comment (pos_of lexbuf) lexbuf; token lexbuf }
  | digit+ as n    { { kind = INT (int_of_string n); pos = pos_of lexbuf } }
  | '"' ([^ '"' '\n']* as s) '"'
                   { { kind = STRING s; pos = pos_of lexbuf } }
  | ident as w     { { kind = kind_of_word w; pos = pos_of lexbuf } }
  | "("            { { kind = LPAREN; pos = pos_of lexbuf } }
  | ")"            { { kind = RPAREN; pos = pos_of lexbuf } }
  | "{"            { { kind = LBRACE; pos = pos_of lexbuf } }
  | "}"            { { kind = RBRACE; pos = pos_of lexbuf } }
  | "["            { { kind = LBRACKET; pos = pos_of lexbuf } }
  | "]"            { { kind = RBRACKET; pos = pos_of lexbuf } }
  | ";"            { { kind = SEMI; pos = pos_of lexbuf } }
  | ","            { { kind = COMMA; pos = pos_of lexbuf } }
  | "."            { { kind = DOT; pos = pos_of lexbuf } }
  | "=="           { { kind = EQ; pos = pos_of lexbuf } }
  | "!="           { { kind = NE; pos = pos_of lexbuf } }
  | "<="           { { kind = LE; pos = pos_of lexbuf } }
  | ">="           { { kind = GE; pos = pos_of lexbuf } }
  | "<"            { { kind = LT; pos = pos_of lexbuf } }
  | ">"            { { kind = GT; pos = pos_of lexbuf } }
  | "&&"           { { kind = ANDAND; pos = pos_of lexbuf } }
  | "||"           { { kind = OROR; pos = pos_of lexbuf } }
  | "!"            { { kind = BANG; pos = pos_of lexbuf } }
  | "="            { { kind = ASSIGN; pos = pos_of lexbuf } }
  | "+"            { { kind = PLUS; pos = pos_of lexbuf } }
  | "-"            { { kind = MINUS; pos = pos_of lexbuf } }
  | "*"            { { kind = STAR; pos = pos_of lexbuf } }
  | "/"            { { kind = SLASH; pos = pos_of lexbuf } }
  | "%"            { { kind = PERCENT; pos = pos_of lexbuf } }
  | eof            { { kind = EOF; pos = pos_of lexbuf } }
  | _ as c
      { raise (Error (Printf.sprintf "unexpected character %C" c, pos_of lexbuf)) }

and comment start = parse
  | "*/"  { () }
  | '\n'  { Lexing.new_line lexbuf; comment start lexbuf }
  | eof   { raise (Error ("unterminated comment", start)) }
  | _     { comment start lexbuf }

{
let tokenize source =
  let lexbuf = Lexing.from_string source in
  let rec go acc =
    let t = token lexbuf in
    if t.kind = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
}
