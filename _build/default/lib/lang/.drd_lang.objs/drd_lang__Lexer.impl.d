lib/lang/lexer.ml: Ast Lexing List Printf Token
