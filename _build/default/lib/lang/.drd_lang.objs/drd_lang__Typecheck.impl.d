lib/lang/typecheck.ml: Array Ast Format Hashtbl List Option Seq Tast
