lib/lang/typecheck.mli: Ast Tast
