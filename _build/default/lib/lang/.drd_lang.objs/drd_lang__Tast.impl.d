lib/lang/tast.ml: Ast Hashtbl List
