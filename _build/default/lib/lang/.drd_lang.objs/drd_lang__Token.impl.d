lib/lang/token.ml: Ast Printf
