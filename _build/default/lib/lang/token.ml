(* Tokens produced by the lexer; each carries its source position. *)

type kind =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_CLASS
  | KW_EXTENDS
  | KW_STATIC
  | KW_SYNCHRONIZED
  | KW_VOID
  | KW_INT
  | KW_BOOLEAN
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_NEW
  | KW_NULL
  | KW_TRUE
  | KW_FALSE
  | KW_THIS
  | KW_BREAK
  | KW_CONTINUE
  | KW_PRINT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

type t = { kind : kind; pos : Ast.pos }

let describe = function
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KW_CLASS -> "'class'"
  | KW_EXTENDS -> "'extends'"
  | KW_STATIC -> "'static'"
  | KW_SYNCHRONIZED -> "'synchronized'"
  | KW_VOID -> "'void'"
  | KW_INT -> "'int'"
  | KW_BOOLEAN -> "'boolean'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'"
  | KW_NEW -> "'new'"
  | KW_NULL -> "'null'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_THIS -> "'this'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_PRINT -> "'print'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"
