(** Recursive-descent parser for MiniJava source text. *)

exception Error of string * Ast.pos
(** Syntax error with a message and the position of the offending token. *)

val parse_program : string -> Ast.program
(** Tokenize and parse a full compilation unit (a list of class
    declarations).  Raises {!Error} or [Lexer.Error] on invalid input. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression; used by tests. *)
