(** Access events and the weaker-than lattice (paper Sections 2.4 and 3.1).

    An access event is the 5-tuple [(m, t, L, a, s)]: memory location,
    thread, lockset, access kind and source site.  This module defines the
    event representation shared by the whole detector pipeline, together
    with the [IsRace] predicate and the weaker-than partial order that
    justifies discarding redundant events. *)

type thread_id = int
(** Identity of a program thread.  Thread ids are small non-negative
    integers assigned by the VM in creation order; id [0] is the main
    thread. *)

type lock_id = int
(** Identity of a lock.  Real locks are identified by the heap id of the
    monitor object; per-thread join pseudo-locks (Section 2.3) are
    hidden heap objects allocated by the VM, so they live in the same
    non-negative id space without colliding — see {!Pseudo_lock}. *)

type loc_id = int
(** Identity of a logical memory location: an (object, field) pair, a
    static field, or a whole array (the paper's footnote 1 merges all
    elements of an array into one location).  The mapping from concrete
    locations to ids is owned by the event source; see
    {!Names.register_loc}. *)

type site_id = int
(** Identity of a source location (statement) used only for race
    reporting, see {!Names.register_site}. *)

(** Access kind; the paper's [a] component. *)
type kind =
  | Read
  | Write

(** Thread lattice element stored in access-history trie nodes
    (Section 3.1/3.2).  [Bot] is the pseudothread [t_bot], "at least two
    distinct threads"; [Top] is [t_top], "no threads", used for internal
    trie nodes holding no access. *)
type thread_info =
  | Thread of thread_id
  | Bot
  | Top

module Lockset : sig
  (** Sets of lock identities held at the time of an access. *)

  type t

  val empty : t

  val is_empty : t -> bool

  val singleton : lock_id -> t

  val add : lock_id -> t -> t

  val remove : lock_id -> t -> t

  val mem : lock_id -> t -> bool

  val subset : t -> t -> bool
  (** [subset a b] is [true] iff every lock of [a] is in [b]. *)

  val disjoint : t -> t -> bool
  (** [disjoint a b] is [true] iff [a] and [b] share no lock; this is the
      third datarace condition, [a.L] ∩ [b.L] = ∅. *)

  val inter : t -> t -> t

  val union : t -> t -> t

  val equal : t -> t -> bool

  val cardinal : t -> int

  val of_list : lock_id list -> t

  val to_sorted_list : t -> lock_id list
  (** Elements in strictly increasing order; this is the canonical trie
      path for the lockset. *)

  val fold : (lock_id -> 'a -> 'a) -> t -> 'a -> 'a

  val pp : t Fmt.t
end

type t = {
  loc : loc_id;
  thread : thread_id;
  locks : Lockset.t;
  kind : kind;
  site : site_id;
}
(** An access event.  New events always carry a concrete thread; only
    stored history entries can degrade to {!Bot}. *)

val make :
  loc:loc_id ->
  thread:thread_id ->
  locks:Lockset.t ->
  kind:kind ->
  site:site_id ->
  t

val equal : t -> t -> bool
(** Componentwise equality (locksets compared as sets). *)

val is_race : t -> t -> bool
(** [is_race e1 e2] is the paper's [IsRace] predicate: same location,
    different threads, disjoint locksets, and at least one write. *)

val kind_leq : kind -> kind -> bool
(** [kind_leq a1 a2] is the access-kind order [a1 ⊑ a2]: [a1 = a2] or
    [a1 = Write].  A write is weaker than (covers) a read at the same
    location because it can race with strictly more future accesses. *)

val thread_leq : thread_info -> thread_info -> bool
(** [thread_leq t1 t2] is the thread order [t1 ⊑ t2]: [t1 = t2] or
    [t1 = Bot].  [Top] is weaker than nothing (it represents no access)
    and nothing but [Top] is weaker than it. *)

val kind_meet : kind -> kind -> kind
(** Meet in the access-kind lattice: equal kinds stay, differing kinds
    become [Write]. *)

val thread_meet : thread_info -> thread_info -> thread_info
(** Meet in the thread lattice: [Top] is the identity, differing concrete
    threads become [Bot]. *)

val weaker_than : t -> t -> bool
(** [weaker_than p q] is Definition 2: [p.m = q.m ∧ p.L ⊆ q.L ∧ p.t ⊑ q.t
    ∧ p.a ⊑ q.a], treating both events' threads as concrete.  When it
    holds, every future race with [q] is also a race with [p]
    (Theorem 1), so [q] carries no information for detection. *)

val stored_weaker_than :
  thread:thread_info -> kind:kind -> locks:Lockset.t -> t -> bool
(** Weaker-than where the earlier access is a stored history entry whose
    thread may have degraded to {!Bot}. *)

val pp_kind : kind Fmt.t

val pp_thread_info : thread_info Fmt.t

val pp : t Fmt.t
