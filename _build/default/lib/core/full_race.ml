type pair = {
  fr_site_a : Event.site_id;
  fr_site_b : Event.site_id;
  fr_kind_a : Event.kind;
  fr_kind_b : Event.kind;
  fr_count : int;
  fr_example : Event.t * Event.t;
}

let reconstruct ?(ownership = true) log ~locs =
  let wanted = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace wanted l ()) locs;
  (* Collect the access events of the requested locations, in order,
     applying the same ownership filter as the detector (Section 7):
     accesses made while a location is still owned by its first thread
     are ordered by Thread.start and are not race material. *)
  let own = Ownership.create () in
  let per_loc : (Event.loc_id, Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | Event_log.Access e when Hashtbl.mem wanted e.Event.loc ->
          let keep =
            (not ownership)
            ||
            match Ownership.check own ~thread:e.Event.thread ~loc:e.Event.loc with
            | Ownership.Owned_skip -> false
            | Ownership.Became_shared | Ownership.Already_shared -> true
          in
          if keep then begin
            let r =
              match Hashtbl.find_opt per_loc e.Event.loc with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add per_loc e.Event.loc r;
                  r
            in
            r := e :: !r
          end
      | _ -> ())
    (Event_log.entries log);
  List.map
    (fun loc ->
      let events =
        match Hashtbl.find_opt per_loc loc with
        | Some r -> Array.of_list (List.rev !r)
        | None -> [||]
      in
      let agg : (Event.site_id * Event.site_id, pair) Hashtbl.t =
        Hashtbl.create 16
      in
      let n = Array.length events in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = events.(i) and b = events.(j) in
          if Event.is_race a b then begin
            let key = (a.Event.site, b.Event.site) in
            match Hashtbl.find_opt agg key with
            | Some p -> Hashtbl.replace agg key { p with fr_count = p.fr_count + 1 }
            | None ->
                Hashtbl.replace agg key
                  {
                    fr_site_a = a.Event.site;
                    fr_site_b = b.Event.site;
                    fr_kind_a = a.Event.kind;
                    fr_kind_b = b.Event.kind;
                    fr_count = 1;
                    fr_example = (a, b);
                  }
          end
        done
      done;
      let pairs =
        Hashtbl.fold (fun _ p acc -> p :: acc) agg []
        |> List.sort (fun a b -> compare (b.fr_count, a.fr_site_a) (a.fr_count, b.fr_site_a))
      in
      (loc, pairs))
    locs

let racy_locs_of_log log =
  let collector = Report.collector () in
  let det = Detector.create collector in
  Event_log.replay log det;
  Report.racy_locs collector
