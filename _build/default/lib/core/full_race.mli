(** FullRace reconstruction (paper Sections 2.5 and 2.6).

    The on-the-fly detector deliberately reports only one access per
    racy location, because enumerating the set [FullRace] of {e all}
    racing pairs is O(N²).  The paper's suggested workflow pairs the
    detector with deterministic replay: record the execution, then
    reconstruct the full pair set off-line — but only for the locations
    the detector already proved racy, which keeps the quadratic cost
    confined to the (few) interesting locations.

    Pairs are aggregated per source-site pair: the user cares about
    which {e statements} race, not about the thousands of dynamic
    instances. *)

type pair = {
  fr_site_a : Event.site_id;  (** Site of the earlier access. *)
  fr_site_b : Event.site_id;  (** Site of the later access. *)
  fr_kind_a : Event.kind;
  fr_kind_b : Event.kind;
  fr_count : int;  (** Dynamic racing instances with this site pair. *)
  fr_example : Event.t * Event.t;  (** One concrete racing pair. *)
}

val reconstruct :
  ?ownership:bool ->
  Event_log.t ->
  locs:Event.loc_id list ->
  (Event.loc_id * pair list) list
(** [reconstruct log ~locs] computes, for each requested location, every
    racing site pair among its accesses in the log (quadratic in the
    per-location access count only).  Locations with no racing pair are
    returned with an empty list.  By default the detector's ownership
    filter is applied first, so pairs ordered by [Thread.start]
    initialization hand-offs are excluded, as in the online detector;
    pass [~ownership:false] for the raw IsRace closure. *)

val racy_locs_of_log : Event_log.t -> Event.loc_id list
(** Convenience: run the (linear, trie-based) detector over the log
    first to find which locations deserve reconstruction. *)
