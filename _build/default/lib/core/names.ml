type t = {
  locs : (int, string) Hashtbl.t;
  sites : (int, string) Hashtbl.t;
  locks : (int, string) Hashtbl.t;
}

let create () =
  {
    locs = Hashtbl.create 256;
    sites = Hashtbl.create 256;
    locks = Hashtbl.create 64;
  }

let register_loc t id name = Hashtbl.replace t.locs id name
let register_site t id name = Hashtbl.replace t.sites id name
let register_lock t id name = Hashtbl.replace t.locks id name

let find tbl prefix id =
  match Hashtbl.find_opt tbl id with
  | Some s -> s
  | None -> Printf.sprintf "%s#%d" prefix id

let loc_name t id = find t.locs "loc" id
let site_name t id = if id < 0 then "<unknown>" else find t.sites "site" id
let lock_name t id = find t.locks "lock" id

let pp_lockset t ppf ls =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") string)
    (List.map (lock_name t) (Event.Lockset.to_sorted_list ls))
