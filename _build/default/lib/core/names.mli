(** Registries mapping the integer identities carried by events back to
    human-readable names, used only when rendering race reports
    (Section 2.6).  Keeping events as plain integers keeps the hot path
    allocation-free; the registries are populated once by the VM and the
    compiler. *)

type t

val create : unit -> t

val register_loc : t -> Event.loc_id -> string -> unit
(** Name a memory location, e.g. ["Task#17.thread_"] or
    ["TspSolver.MinTourLen"] or ["int[]#42"]. *)

val register_site : t -> Event.site_id -> string -> unit
(** Name a source site, e.g. ["Worker.run:12 (write a.f)"]. *)

val register_lock : t -> Event.lock_id -> string -> unit
(** Name a lock, e.g. ["Pool#3"] or ["S_2"] for a join pseudo-lock. *)

val loc_name : t -> Event.loc_id -> string
val site_name : t -> Event.site_id -> string
val lock_name : t -> Event.lock_id -> string

val pp_lockset : t -> Event.Lockset.t Fmt.t
