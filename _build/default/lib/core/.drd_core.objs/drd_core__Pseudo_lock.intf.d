lib/core/pseudo_lock.mli: Event
