lib/core/event_log.ml: Detector Event Fmt List Printf String
