lib/core/trie.mli: Event Fmt
