lib/core/event.ml: Fmt Int List Set
