lib/core/lock_order.ml: Event Hashtbl List Option
