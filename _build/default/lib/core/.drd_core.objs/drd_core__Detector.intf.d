lib/core/detector.mli: Event Fmt Report
