lib/core/full_race.mli: Event Event_log
