lib/core/report.ml: Event Fmt Hashtbl List Names Trie
