lib/core/names.ml: Event Fmt Hashtbl List Printf
