lib/core/trie_packed.mli: Event Trie
