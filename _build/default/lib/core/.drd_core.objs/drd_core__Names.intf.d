lib/core/names.mli: Event Fmt
