lib/core/trie.ml: Event Fmt List Lockset
