lib/core/cache.mli: Event
