lib/core/detector.ml: Cache Event Fmt Hashtbl Ownership Report Trie Trie_packed
