lib/core/ownership.ml: Event Hashtbl
