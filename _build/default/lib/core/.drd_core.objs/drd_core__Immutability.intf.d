lib/core/immutability.mli: Event Fmt
