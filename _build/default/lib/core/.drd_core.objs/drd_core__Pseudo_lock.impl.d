lib/core/pseudo_lock.ml: Event Hashtbl Option
