lib/core/trie_packed.ml: Event Hashtbl List Lockset Trie
