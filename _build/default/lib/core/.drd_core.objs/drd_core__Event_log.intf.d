lib/core/event_log.mli: Detector Event Fmt
