lib/core/full_race.ml: Array Detector Event Event_log Hashtbl List Ownership Report
