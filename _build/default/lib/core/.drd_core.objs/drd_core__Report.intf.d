lib/core/report.mli: Event Fmt Names Trie
