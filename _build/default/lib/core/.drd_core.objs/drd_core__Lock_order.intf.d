lib/core/lock_order.mli: Event
