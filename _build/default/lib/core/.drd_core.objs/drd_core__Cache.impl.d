lib/core/cache.ml: Array Event List
