lib/core/ownership.mli: Event
