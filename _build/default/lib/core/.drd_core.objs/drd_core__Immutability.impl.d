lib/core/immutability.ml: Event Fmt Hashtbl List
