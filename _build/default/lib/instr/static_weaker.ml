module Ir = Drd_ir.Ir
module Dominance = Drd_ir.Dominance
module Ssa = Drd_ir.Ssa
module Vn = Drd_ir.Value_numbering
open Drd_core
open Ir

(* Static weaker-than elimination (paper Section 6.1).

   A trace statement [S_j] is removed when some trace [S_i] in the same
   method is statically weaker: every event of [S_j] is preceded, in the
   same execution, by an event of [S_i] with

     e_i.t = e_j.t   (intraprocedural: same thread),
     e_i.a ⊑ e_j.a   (checked directly on the trace kinds),
     e_i.L ⊆ e_j.L   (via the [outer] synchronization-nesting check),
     e_i.m = e_j.m   (same field and same value number for the object
                      reference; for arrays the array reference's value
                      number alone, since a whole array is one logical
                      location),

   and with no thread start/join between them (Definition 3).

   The [Exec] predicate (Definition 4) is computed as a small dataflow
   automaton per candidate [S_i]: a program point is in state "clean"
   when every path to it passed [S_i] after the last call-like
   instruction (calls, thread start/join, and monitor operations —
   barring monitor operations also makes the lockset-subset argument
   immediate, because the held lockset cannot change between the two
   traces).  [S_j] qualifies iff its entry state is exactly {clean}.
   This subsumes the paper's dominance test: a path reaching [S_j]
   without passing [S_i] keeps its initial "dirty" state. *)

type tr = { t_block : int; t_index : int; t_instr : instr; t_trace : trace }

let collect_traces m =
  let acc = ref [] in
  iter_blocks m (fun b ->
      List.iteri
        (fun idx i ->
          match i.i_op with
          | Trace t ->
              acc :=
                { t_block = b.b_label; t_index = idx; t_instr = i; t_trace = t }
                :: !acc
          | _ -> ())
        b.b_instrs);
  List.rev !acc

(* Grouping key for m-equality candidates. *)
type group_key =
  | Gfield of string * int (* declaring class, field index *)
  | Gstatic of int
  | Garray

let group_key t =
  match t.tr_target with
  | Tr_field (_, fm) -> Gfield (fm.fm_class, fm.fm_index)
  | Tr_static sm -> Gstatic sm.sm_slot
  | Tr_array _ -> Garray

(* Is [prefix] a prefix of [l]?  Used for outer(S_i, S_j): S_j is at the
   same synchronization nesting as S_i or deeper within it. *)
let rec is_prefix prefix l =
  match (prefix, l) with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

(* m-equality given the value numbers of the object operands. *)
let same_location vn si sj =
  match (si.t_trace.tr_target, sj.t_trace.tr_target) with
  | Tr_static a, Tr_static b -> a.sm_slot = b.sm_slot
  | Tr_field (oi, fa), Tr_field (oj, fb) -> (
      fa.fm_class = fb.fm_class
      && fa.fm_index = fb.fm_index
      &&
      match
        ( Vn.vn_of_use vn si.t_instr.i_id oi,
          Vn.vn_of_use vn sj.t_instr.i_id oj )
      with
      | Some a, Some b -> a = b
      | _ -> false)
  | Tr_array (ai, _), Tr_array (aj, _) -> (
      match
        ( Vn.vn_of_use vn si.t_instr.i_id ai,
          Vn.vn_of_use vn sj.t_instr.i_id aj )
      with
      | Some a, Some b -> a = b
      | _ -> false)
  | _ -> false

(* Dataflow states as a bitmask: bit 0 = clean reachable, bit 1 = dirty
   reachable. *)
let clean = 1

let dirty = 2

let transfer_instr si_iid state (i : instr) =
  if i.i_id = si_iid then if state = 0 then 0 else clean
  else if is_barrier i.i_op then if state = 0 then 0 else dirty
  else state

(* For candidate [S_i], compute the automaton state at the entry of each
   block, then decide [Exec(S_i, S_j)] for the given [S_j]s. *)
let exec_states m si =
  let n = n_blocks m in
  let entry_state = Array.make n 0 in
  entry_state.(m.mir_entry) <- dirty;
  let transfer_block b state =
    List.fold_left (transfer_instr si.t_instr.i_id) state
      (block m b).b_instrs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if entry_state.(b) <> 0 then begin
        let out = transfer_block b entry_state.(b) in
        List.iter
          (fun s ->
            let merged = entry_state.(s) lor out in
            if merged <> entry_state.(s) then begin
              entry_state.(s) <- merged;
              changed := true
            end)
          (successors m b)
      end
    done
  done;
  entry_state

let exec_holds m entry_state si sj =
  (* State just before S_j: transfer from its block entry through the
     preceding instructions. *)
  if si.t_instr.i_id = sj.t_instr.i_id then false
  else
    let blk = block m sj.t_block in
    let rec walk idx state = function
      | [] -> state
      | _ when idx = sj.t_index -> state
      | i :: rest -> walk (idx + 1) (transfer_instr si.t_instr.i_id state i) rest
    in
    let state = walk 0 entry_state.(sj.t_block) blk.b_instrs in
    state = clean

let kind_leq = Event.kind_leq

(* Eliminate redundant traces in one method; returns the number of
   traces removed. *)
let eliminate_mir (m : mir) : int =
  let traces = collect_traces m in
  if List.length traces < 2 then 0
  else begin
    let ssa = Ssa.compute m in
    let vn = Vn.compute m ssa in
    (* Group by location signature. *)
    let groups = Hashtbl.create 16 in
    List.iter
      (fun t ->
        let k = group_key t.t_trace in
        Hashtbl.replace groups k
          (t :: Option.value (Hashtbl.find_opt groups k) ~default:[]))
      traces;
    let eliminated = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ group ->
        let group = List.rev group in
        List.iter
          (fun si ->
            (* Candidates S_j that S_i might cover. *)
            let candidates =
              List.filter
                (fun sj ->
                  sj.t_instr.i_id <> si.t_instr.i_id
                  && (not (Hashtbl.mem eliminated sj.t_instr.i_id))
                  && kind_leq si.t_trace.tr_kind sj.t_trace.tr_kind
                  && is_prefix si.t_instr.i_sync sj.t_instr.i_sync
                  && same_location vn si sj)
                group
            in
            if candidates <> [] then begin
              let states = exec_states m si in
              List.iter
                (fun sj ->
                  if exec_holds m states si sj then
                    Hashtbl.replace eliminated sj.t_instr.i_id ())
                candidates
            end)
          group)
      groups;
    if Hashtbl.length eliminated > 0 then
      iter_blocks m (fun b ->
          b.b_instrs <-
            List.filter
              (fun i -> not (Hashtbl.mem eliminated i.i_id))
              b.b_instrs);
    Hashtbl.length eliminated
  end

let eliminate (p : program) : int =
  let n = ref 0 in
  iter_mirs p (fun m -> n := !n + eliminate_mir m);
  !n
