lib/instr/peel.ml: Drd_lang Hashtbl List Option
