lib/instr/static_weaker.ml: Array Drd_core Drd_ir Event Hashtbl List Option
