lib/instr/insert.ml: Drd_core Drd_ir List
