module Tast = Drd_lang.Tast
open Tast

(* Loop peeling (paper Section 6.3).

   The loop-invariant events of a loop body are redundant after the
   first iteration, but the static weaker-than relation cannot remove
   their traces: the first iteration's event is not redundant, and the
   instrumentation cannot be hoisted past the potentially excepting
   instructions (null/bounds checks) that Java-like code is full of.
   Peeling the first iteration makes the peeled copy's traces statically
   weaker than the loop-body copies, which the elimination pass then
   removes.

   We peel at the typed-AST level, which is semantically equivalent to
   the paper's HIR-level transformation and considerably simpler:

     while (c) { B }        becomes   if (c) { B; while (c) { B } }
     for (i; c; u) { B }    becomes   i; if (c) { B; u; for (; c; u) { B } }

   The produced statement sequences evaluate conditions, bodies and
   updates in exactly the original order, so behaviour (including the
   event stream, modulo which static site ids appear) is preserved.

   A loop is peeled only when its body
   - contains at least one memory access (otherwise there is nothing to
     gain),
   - has no top-level [break]/[continue] (they would re-bind to an outer
     loop once the body is copied outside the loop), and
   - is not too large (peeling nested loops multiplies code size). *)

let max_peeled_size = 400

let rec stmt_size s =
  match s.ts with
  | TIf (_, a, b) -> 1 + stmts_size a + stmts_size b
  | TWhile (_, b) -> 1 + stmts_size b
  | TFor (i, _, u, b) ->
      1 + stmts_size (Option.to_list i) + stmts_size (Option.to_list u)
      + stmts_size b
  | TSync (_, b) -> 1 + stmts_size b
  | _ -> 1

and stmts_size l = List.fold_left (fun acc s -> acc + stmt_size s) 0 l

(* Does the expression read memory (fields, statics, array elements)? *)
let rec expr_has_access (e : texpr) =
  match e.te with
  | TGetField _ | TGetStatic _ | TIndex _ -> true
  | TInt _ | TBool _ | TNull | TThis | TLocal _ -> false
  | TLen a -> expr_has_access a
  | TCall c -> (
      match c with
      | CVirtual (r, _, args, _) -> List.exists expr_has_access (r :: args)
      | CStatic (_, _, args, _) -> List.exists expr_has_access args
      | CStart r | CJoin r -> expr_has_access r
      | CWait r | CNotify r | CNotifyAll r -> expr_has_access r
      | CYield -> false)
  | TNew (_, args) -> List.exists expr_has_access args
  | TNewArray (_, dims) -> List.exists expr_has_access dims
  | TBinop (_, a, b) -> expr_has_access a || expr_has_access b
  | TUnop (_, a) -> expr_has_access a

let rec stmt_has_access s =
  match s.ts with
  | TSetField _ | TSetStatic _ | TSetIndex _ -> true
  | TDecl (_, _, e) -> Option.fold ~none:false ~some:expr_has_access e
  | TAssignLocal (_, e) | TExpr e -> expr_has_access e
  | TIf (c, a, b) ->
      expr_has_access c || List.exists stmt_has_access a
      || List.exists stmt_has_access b
  | TWhile (c, b) -> expr_has_access c || List.exists stmt_has_access b
  | TFor (i, c, u, b) ->
      Option.fold ~none:false ~some:stmt_has_access i
      || Option.fold ~none:false ~some:expr_has_access c
      || Option.fold ~none:false ~some:stmt_has_access u
      || List.exists stmt_has_access b
  | TSync (e, b) -> expr_has_access e || List.exists stmt_has_access b
  | TReturn e -> Option.fold ~none:false ~some:expr_has_access e
  | TPrint (_, e) -> Option.fold ~none:false ~some:expr_has_access e
  | TBreak | TContinue -> false

(* Top-level break/continue: one that would bind to THIS loop. *)
let rec has_loop_exit s =
  match s.ts with
  | TBreak | TContinue -> true
  | TIf (_, a, b) -> List.exists has_loop_exit a || List.exists has_loop_exit b
  | TSync (_, b) -> List.exists has_loop_exit b
  | TWhile _ | TFor _ -> false (* binds to the inner loop *)
  | _ -> false

let peelable body =
  List.exists stmt_has_access body
  && (not (List.exists has_loop_exit body))
  && stmts_size body <= max_peeled_size

let rec peel_stmt s : tstmt list =
  match s.ts with
  | TWhile (c, body) ->
      let body = peel_stmts body in
      if peelable body then
        [
          {
            s with
            ts = TIf (c, body @ [ { s with ts = TWhile (c, body) } ], []);
          };
        ]
      else [ { s with ts = TWhile (c, body) } ]
  | TFor (init, Some c, update, body) ->
      let body = peel_stmts body in
      if peelable body then
        Option.to_list init
        @ [
            {
              s with
              ts =
                TIf
                  ( c,
                    body @ Option.to_list update
                    @ [ { s with ts = TFor (None, Some c, update, body) } ],
                    [] );
            };
          ]
      else [ { s with ts = TFor (init, Some c, update, body) } ]
  | TFor (init, None, update, body) ->
      [ { s with ts = TFor (init, None, update, peel_stmts body) } ]
  | TIf (c, a, b) -> [ { s with ts = TIf (c, peel_stmts a, peel_stmts b) } ]
  | TSync (e, b) -> [ { s with ts = TSync (e, peel_stmts b) } ]
  | _ -> [ s ]

and peel_stmts stmts = List.concat_map peel_stmt stmts

(* Peel every method body of a program, returning a fresh tprogram (the
   input is not mutated). *)
let peel_program (p : tprogram) : tprogram =
  let methods = Hashtbl.create (Hashtbl.length p.methods) in
  Hashtbl.iter
    (fun key m ->
      Hashtbl.replace methods key { m with tm_body = peel_stmts m.tm_body })
    p.methods;
  { p with methods }
