module Ir = Drd_ir.Ir
module Site_table = Drd_ir.Site_table
open Ir

(* Trace insertion (paper Section 6.1, first half): after every
   instruction that accesses an object field, a static field or an array
   element, insert the [trace(o, f, L, a)] pseudo-instruction — unless
   static datarace analysis proved the access can never race.

   [keep] decides whether a given access instruction is instrumented; it
   is the hook for the static datarace set (Section 5): with no static
   analysis every access is kept ("NoStatic" in Table 2). *)

let trace_of_access m sites (i : instr) : instr option =
  let mk target kind desc =
    let site =
      Site_table.add sites
        {
          Site_table.s_method = mir_key m;
          s_line = i.i_line;
          s_desc = desc;
          s_iid = i.i_id;
        }
    in
    Some
      {
        i_op = Trace { tr_target = target; tr_kind = kind; tr_site = site };
        i_id = fresh_iid m;
        i_line = i.i_line;
        i_sync = i.i_sync;
      }
  in
  match i.i_op with
  | GetField (_, o, fm) ->
      mk (Tr_field (o, fm)) Drd_core.Event.Read ("read " ^ fm.fm_name)
  | PutField (o, fm, _) ->
      mk (Tr_field (o, fm)) Drd_core.Event.Write ("write " ^ fm.fm_name)
  | GetStatic (_, sm) ->
      mk (Tr_static sm) Drd_core.Event.Read
        ("read " ^ sm.sm_class ^ "." ^ sm.sm_name)
  | PutStatic (sm, _) ->
      mk (Tr_static sm) Drd_core.Event.Write
        ("write " ^ sm.sm_class ^ "." ^ sm.sm_name)
  | ALoad (_, a, idx) -> mk (Tr_array (a, idx)) Drd_core.Event.Read "read []"
  | AStore (a, idx, _) ->
      mk (Tr_array (a, idx)) Drd_core.Event.Write "write []"
  | _ -> None

let instrument_mir ?(keep = fun _ _ -> true) sites m =
  iter_blocks m (fun b ->
      let instrs =
        List.concat_map
          (fun i ->
            if keep m i then
              match trace_of_access m sites i with
              | Some tr -> [ i; tr ]
              | None -> [ i ]
            else [ i ])
          b.b_instrs
      in
      b.b_instrs <- instrs)

(* Instrument a whole program in place.  [keep m i] is consulted only
   for access instructions. *)
let instrument ?keep (p : program) =
  iter_mirs p (fun m -> instrument_mir ?keep p.p_sites m)

(* Count the trace instructions currently present (for tests and for the
   Table 2 instrumentation statistics). *)
let count_traces_mir m =
  let n = ref 0 in
  iter_instrs m (fun _ i -> match i.i_op with Trace _ -> incr n | _ -> ());
  !n

let count_traces p =
  let n = ref 0 in
  iter_mirs p (fun m -> n := !n + count_traces_mir m);
  !n
