(* The paper's Figure 2 example, end to end: the precise races our
   detector reports, how thread start/join ordering is handled, and the
   feasible race (Section 2.2) that happens-before detection misses.

   Run with:  dune exec examples/figure2.exe *)

module H = Drd_harness

let () =
  Fmt.pr "=== Figure 2: p and q are distinct locks ===@.";
  let compiled, r =
    H.Pipeline.run_source H.Config.full (H.Programs.figure2 ())
  in
  (match r.H.Pipeline.report with
  | Some coll ->
      let names = H.Pipeline.names_of compiled r in
      Fmt.pr "%a@." (Drd_core.Report.pp names) coll
  | None -> ());
  Fmt.pr
    "@.T01 (main's write before start) is NOT reported: the ownership@.";
  Fmt.pr "model sees main as the owner until the children touch x.f.@.";
  Fmt.pr "@.=== Figure 2 variant: p == q (one shared lock) ===@.";
  let _, same =
    H.Pipeline.run_source H.Config.full (H.Programs.figure2 ~same_pq:true ())
  in
  Fmt.pr "our detector reports:        %s@."
    (String.concat ", " same.H.Pipeline.racy_objects);
  (* Sweep schedules for the happens-before baseline. *)
  let hits = ref 0 and misses = ref 0 in
  for seed = 1 to 20 do
    let config = { H.Config.happens_before with H.Config.seed } in
    let _, hb =
      H.Pipeline.run_source config (H.Programs.figure2 ~same_pq:true ())
    in
    if hb.H.Pipeline.racy_objects = [] then incr misses else incr hits
  done;
  Fmt.pr "happens-before baseline over 20 schedules: reported %d, missed %d@."
    !hits !misses;
  Fmt.pr
    "The race is feasible under every schedule, but a happens-before@.";
  Fmt.pr
    "detector only sees it when T2 happens to take the lock first@.";
  Fmt.pr "(Section 2.2's argument for lockset-based detection).@."
