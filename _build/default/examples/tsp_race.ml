(* The tsp benchmark's real bug: TspSolver.MinTourLen is read by the
   branch-and-bound pruning test without a lock while updates hold
   minLock.  This example runs the benchmark, separates the real race
   from the protocol-protected TourElement reports, and shows the
   detector statistics.

   Run with:  dune exec examples/tsp_race.exe *)

module H = Drd_harness

let () =
  let b = Option.get (H.Programs.find "tsp") in
  let compiled, r =
    H.Pipeline.run_source H.Config.full b.H.Programs.b_source
  in
  Fmt.pr "tsp finished: %s@."
    (String.concat ", "
       (List.map
          (fun (t, v) -> Fmt.str "%s=%a" t Fmt.(option Drd_vm.Value.pp) v)
          r.H.Pipeline.prints));
  let real, protocol =
    List.partition
      (fun o ->
        H.Tables.contains_sub "MinTourLen" o)
      r.H.Pipeline.racy_objects
  in
  Fmt.pr "@.Real bug (lost-update pruning bound):@.";
  List.iter (Fmt.pr "  %s@.") real;
  Fmt.pr "@.Protocol-protected reports (each TourElement is only touched by@.";
  Fmt.pr "one thread at a time via the synchronized queue, which lockset@.";
  Fmt.pr "detection cannot see — the paper reports these for tsp too):@.";
  List.iter (Fmt.pr "  %s@.") protocol;
  (match r.H.Pipeline.detector_stats with
  | Some s ->
      Fmt.pr "@.Detector statistics:@.%a@." Drd_core.Detector.pp_stats s
  | None -> ());
  Fmt.pr "@.Instrumentation: %d traces after static filtering, %d removed@."
    compiled.H.Pipeline.traces_inserted compiled.H.Pipeline.traces_eliminated;
  Fmt.pr "by the static weaker-than relation.@."
