(* The Section 10 future-work items, implemented: potential-deadlock
   detection from lock-order graphs, dynamic immutability analysis, and
   the post-mortem mode of Section 1 (record the event stream, detect
   off-line).

   Run with:  dune exec examples/extensions_demo.exe *)

module H = Drd_harness
open Drd_core

let hazard_src =
  {|
  class Resource { int uses; }
  class Transfer extends Thread {
    Resource from; Resource to_;
    Transfer(Resource a, Resource b) { from = a; to_ = b; }
    void run() {
      synchronized (from) {
        synchronized (to_) {
          from.uses = from.uses + 1;
          to_.uses = to_.uses + 1;
        }
      }
    }
  }
  class Main {
    static void main() {
      Resource a = new Resource();
      Resource b = new Resource();
      Transfer t1 = new Transfer(a, b);   // locks a then b
      Transfer t2 = new Transfer(b, a);   // locks b then a!
      t1.start();
      t1.join();        // this run happens to serialize them ...
      t2.start();
      t2.join();
      print("uses", a.uses + b.uses);
    }
  }
|}

let () =
  Fmt.pr "=== potential deadlocks (lock-order cycles) ===@.";
  let _, r = H.Pipeline.run_source H.Config.full hazard_src in
  Fmt.pr "the run completed (uses printed: %d values), no dataraces: %b@."
    (List.length r.H.Pipeline.prints)
    (r.H.Pipeline.races = []);
  List.iter
    (fun (d : Lock_order.report) ->
      Fmt.pr
        "POTENTIAL DEADLOCK: locks {%a} are acquired in conflicting order by \
         threads {%a}@."
        Fmt.(list ~sep:comma int)
        d.Lock_order.dl_locks
        Fmt.(list ~sep:comma int)
        d.Lock_order.dl_threads)
    r.H.Pipeline.deadlocks;
  Fmt.pr
    "The hazard is reported although this schedule never blocked — the@.";
  Fmt.pr "cycle exists in the lock-order graph.@.";

  Fmt.pr "@.=== dynamic immutability analysis ===@.";
  List.iter
    (fun (b : H.Programs.benchmark) ->
      let _, r = H.Pipeline.run_source H.Config.full b.H.Programs.b_source in
      match r.H.Pipeline.immutability with
      | Some s ->
          Fmt.pr "  %-10s %a@." b.H.Programs.b_name Immutability.pp_summary s
      | None -> ())
    H.Programs.benchmarks;
  Fmt.pr
    "Shared-immutable locations are the initialize-then-publish data that@.";
  Fmt.pr "needs no locking; shared-mutable is where discipline matters.@.";

  Fmt.pr "@.=== post-mortem detection (Section 1) ===@.";
  let b = Option.get (H.Programs.find "hedc") in
  let compiled = H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source in
  let log, _ = H.Pipeline.record_log compiled in
  Fmt.pr "recorded %d events during execution@." (Event_log.length log);
  let coll, stats = H.Pipeline.detect_post_mortem H.Config.full log in
  Fmt.pr "off-line detection: %d races on %d tracked locations@."
    (Report.count coll) stats.Detector.locations_tracked;
  Fmt.pr "(identical to the online reports — see test/test_postmortem.ml)@."
