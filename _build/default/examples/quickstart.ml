(* Quickstart: compile a small multithreaded MiniJava program, run it
   under the full detector, and print the datarace reports.

   Run with:  dune exec examples/quickstart.exe *)

module H = Drd_harness

let source =
  {|
  class Account {
    int balance;
    // deposit is synchronized ...
    synchronized void deposit(int amount) { balance = balance + amount; }
    // ... but the balance check is not: a datarace.
    boolean overdrawn() { return balance < 0; }
  }
  class Teller extends Thread {
    Account account; int rounds;
    Teller(Account a, int n) { account = a; rounds = n; }
    void run() {
      for (int i = 0; i < rounds; i = i + 1) {
        account.deposit(10);
        if (account.overdrawn()) { print("overdrawn", i); }
      }
    }
  }
  class Main {
    static void main() {
      Account a = new Account();
      Teller t1 = new Teller(a, 100);
      Teller t2 = new Teller(a, 100);
      t1.start(); t2.start();
      t1.join(); t2.join();
      print("balance", a.balance);
    }
  }
|}

let () =
  let compiled, result = H.Pipeline.run_source H.Config.full source in
  Fmt.pr "Program output:@.";
  List.iter
    (fun (tag, v) ->
      Fmt.pr "  %s = %a@." tag Fmt.(option Drd_vm.Value.pp) v)
    result.H.Pipeline.prints;
  Fmt.pr "@.";
  match result.H.Pipeline.report with
  | Some coll when Drd_core.Report.count coll > 0 ->
      let names = H.Pipeline.names_of compiled result in
      Fmt.pr "%a@." (Drd_core.Report.pp names) coll;
      Fmt.pr "@.The unsynchronized overdrawn() read races with the@.";
      Fmt.pr "synchronized deposit() write: their locksets are disjoint.@."
  | _ -> Fmt.pr "No dataraces detected.@."
