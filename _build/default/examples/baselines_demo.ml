(* Precision comparison with the related work of Sections 8.3 and 9:
   the mtrt join/common-lock idiom (Eraser false positive), object
   granularity (Praun-Gross false positives), and the feasible race a
   happens-before detector misses.

   Run with:  dune exec examples/baselines_demo.exe *)

module H = Drd_harness

let count config source =
  (snd (H.Pipeline.run_source config source)).H.Pipeline.racy_objects

let () =
  Fmt.pr "=== mtrt: statistics under a common lock, read after join ===@.";
  let b = Option.get (H.Programs.find "mtrt") in
  let ours = count H.Config.full b.H.Programs.b_source in
  let eraser = count H.Config.eraser b.H.Programs.b_source in
  Fmt.pr "ours:   %s@." (String.concat ", " ours);
  Fmt.pr "Eraser: %s@." (String.concat ", " eraser);
  Fmt.pr
    "The children hold {S1,sync} and {S2,sync}; the parent reads after@.";
  Fmt.pr
    "joining both, holding {S1,S2}.  Mutually intersecting locksets ⇒@.";
  Fmt.pr
    "no race for us; no SINGLE common lock ⇒ a spurious Eraser report.@.";
  Fmt.pr "@.=== object granularity (Praun-Gross) on every benchmark ===@.";
  Fmt.pr "%-10s %6s %9s@." "program" "ours" "objrace";
  List.iter
    (fun (bench : H.Programs.benchmark) ->
      Fmt.pr "%-10s %6d %9d@." bench.H.Programs.b_name
        (List.length (count H.Config.full bench.H.Programs.b_source))
        (List.length (count H.Config.objrace bench.H.Programs.b_source)))
    H.Programs.benchmarks;
  Fmt.pr
    "Treating a method call on an object as a write to it makes even a@.";
  Fmt.pr "fully synchronized program (elevator) look racy.@.";
  Fmt.pr "@.=== feasible race (Figure 2, p == q) vs happens-before ===@.";
  let src = H.Programs.figure2 ~same_pq:true () in
  let hb_hits = ref 0 in
  for seed = 1 to 20 do
    if count { H.Config.happens_before with H.Config.seed } src <> [] then
      incr hb_hits
  done;
  Fmt.pr "ours: reported on 20/20 schedules; happens-before: %d/20.@." !hb_hits
