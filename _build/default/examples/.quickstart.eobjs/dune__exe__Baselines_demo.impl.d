examples/baselines_demo.ml: Drd_harness Fmt List Option String
