examples/quickstart.mli:
