examples/extensions_demo.ml: Detector Drd_core Drd_harness Event_log Fmt Immutability List Lock_order Option Report
