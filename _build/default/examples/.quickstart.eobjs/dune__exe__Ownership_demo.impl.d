examples/ownership_demo.ml: Drd_harness Fmt List String
