examples/figure2.ml: Drd_core Drd_harness Fmt String
