examples/static_demo.ml: Drd_harness Drd_instr Drd_static Fmt Pipe_compile String
