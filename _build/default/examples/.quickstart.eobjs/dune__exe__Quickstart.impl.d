examples/quickstart.ml: Drd_core Drd_harness Drd_vm Fmt List
