examples/figure2.mli:
