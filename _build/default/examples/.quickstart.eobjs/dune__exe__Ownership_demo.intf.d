examples/ownership_demo.mli:
