examples/pipe_compile.ml: Drd_ir Drd_lang
