examples/static_demo.mli:
