examples/tsp_race.ml: Drd_core Drd_harness Drd_vm Fmt List Option String
