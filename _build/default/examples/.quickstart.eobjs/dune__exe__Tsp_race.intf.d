examples/tsp_race.mli:
