examples/extensions_demo.mli:
