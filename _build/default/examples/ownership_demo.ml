(* The ownership model (paper Sections 2.3 and 7): data initialized by
   one thread and handed to a child through start() is not racy, but a
   pure lockset view flags it.  This demo runs the same program with
   the ownership filter on and off, and also shows that real races
   survive the filter.

   Run with:  dune exec examples/ownership_demo.exe *)

module H = Drd_harness

let handoff =
  {|
  class Job {
    int input; int[] data; int result;
  }
  class Crunch extends Thread {
    Job job;
    Crunch(Job j) { job = j; }
    void run() {
      int acc = job.input;
      for (int i = 0; i < job.data.length; i = i + 1) {
        acc = acc + job.data[i];
      }
      job.result = acc;       // still single-threaded at a time
    }
  }
  class Main {
    static void main() {
      Job j = new Job();
      j.input = 17;           // initialize ...
      j.data = new int[50];
      for (int i = 0; i < 50; i = i + 1) { j.data[i] = i; }
      Crunch c = new Crunch(j);
      c.start();              // ... then hand off
      c.join();
      print("result", j.result);
    }
  }
|}

let count config = (snd (H.Pipeline.run_source config handoff)).H.Pipeline.racy_objects

let () =
  Fmt.pr "initialize-then-hand-off program:@.";
  Fmt.pr "  Full (ownership on):  %d racy objects@."
    (List.length (count H.Config.full));
  let noown = count H.Config.no_ownership in
  Fmt.pr "  NoOwnership:          %d racy objects (%s)@." (List.length noown)
    (String.concat ", " noown);
  Fmt.pr
    "@.The ownership model treats the first accessing thread as the@.";
  Fmt.pr "owner and starts monitoring only when a second thread appears —@.";
  Fmt.pr "approximating the happened-before edge of Thread.start().@.";
  (* Across the whole benchmark suite. *)
  Fmt.pr "@.Across the benchmark suite (racy objects, Full vs NoOwnership):@.";
  List.iter
    (fun (b : H.Programs.benchmark) ->
      let n config =
        List.length
          (snd (H.Pipeline.run_source config b.H.Programs.b_source))
            .H.Pipeline.racy_objects
      in
      Fmt.pr "  %-10s %3d vs %3d@." b.H.Programs.b_name (n H.Config.full)
        (n H.Config.no_ownership))
    H.Programs.benchmarks
