(* Shared helper for the examples: parse → typecheck → lower. *)

let compile source =
  Drd_lang.Parser.parse_program source
  |> Drd_lang.Typecheck.check
  |> Drd_ir.Lower.lower_program
