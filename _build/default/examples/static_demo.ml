(* The static datarace analysis (paper Section 5): what the points-to
   based may-race computation, the must-held-lock analysis and the
   thread-specific escape extension each remove before any code runs.

   Run with:  dune exec examples/static_demo.exe *)

module H = Drd_harness
module Race_set = Drd_static.Race_set
module Insert = Drd_instr.Insert

let source =
  {|
  class Counter {
    int hits;                       // protected by this (must-sync)
    synchronized void hit() { hits = hits + 1; }
  }
  class Logger {
    static int lines;               // unprotected static: may race
  }
  class Crawler extends Thread {
    Counter shared;
    int[] scratch;                  // thread-specific: ctor + run only
    int pages;
    Crawler(Counter c, int n) {
      shared = c; pages = n;
      scratch = new int[64];
    }
    void run() {
      for (int p = 0; p < pages; p = p + 1) {
        scratch[p % 64] = p;        // provably single-threaded
        shared.hit();               // protected
        Logger.lines = Logger.lines + 1;   // datarace
      }
    }
  }
  class Main {
    static void main() {
      Counter c = new Counter();
      Crawler a = new Crawler(c, 40);
      Crawler b = new Crawler(c, 40);
      a.start(); b.start(); a.join(); b.join();
      print("hits", c.hits);
      print("lines", Logger.lines);
    }
  }
|}

let () =
  let prog = Pipe_compile.compile source in
  let rs = Race_set.compute prog in
  Fmt.pr "Static datarace analysis:@.%a@.@." Race_set.pp_stats
    (Race_set.stats rs);
  (* Instrument twice to compare. *)
  let all = Pipe_compile.compile source in
  Insert.instrument all;
  Insert.instrument ~keep:(Race_set.may_race rs) prog;
  Fmt.pr "trace statements without static analysis: %d@."
    (Insert.count_traces all);
  Fmt.pr "trace statements with static analysis:    %d@."
    (Insert.count_traces prog);
  Fmt.pr
    "@.The scratch array is thread-specific (reachable only from the@.";
  Fmt.pr "constructor and run of a safe thread), the counter is must-@.";
  Fmt.pr "protected by its lock, and only the Logger.lines accesses —@.";
  Fmt.pr "the real datarace — plus a few hand-off reads stay instrumented.@.";
  (* And the dynamic confirmation: *)
  let _, r = H.Pipeline.run_source H.Config.full source in
  Fmt.pr "@.Dynamic run reports: %s@."
    (String.concat ", " r.H.Pipeline.racy_objects)
